// Empirical distributions.
//
// Every figure in the paper is a CDF or CCDF of some per-user or per-pair
// metric; Ecdf is the single representation behind all of them. Samples are
// kept sorted; evaluation is O(log n).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace slmob {

struct EcdfPoint {
  double x{0.0};
  double y{0.0};  // F(x) for CDF output, 1 - F(x) for CCDF output
};

namespace detail {

// Growable sample array on malloc/realloc instead of std::vector. The
// allocator interface forbids realloc, so a growing vector always copies
// into a second live buffer — transiently doubling resident memory — and
// leaves the freed generation behind in the allocator. realloc lets glibc
// grow mmap-backed chunks with mremap (pages are retagged, never copied),
// which keeps a long accumulation's peak RSS at the size of the data it
// actually holds. This matters for the streaming analysis engine, whose
// whole-trace sample sets are the dominant term of its memory footprint.
class SampleBuf {
 public:
  SampleBuf() = default;
  explicit SampleBuf(const std::vector<double>& v) { append(v.data(), v.size()); }
  SampleBuf(const SampleBuf& other) { append(other.data_, other.size_); }
  SampleBuf(SampleBuf&& other) noexcept
      : data_(other.data_), size_(other.size_), cap_(other.cap_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
  }
  SampleBuf& operator=(SampleBuf other) noexcept {
    swap(other);
    return *this;
  }
  ~SampleBuf();

  void swap(SampleBuf& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(cap_, other.cap_);
  }

  void push_back(double x) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = x;
  }
  void append(const double* src, std::size_t n);
  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] double* begin() { return data_; }
  [[nodiscard]] double* end() { return data_ + size_; }
  [[nodiscard]] const double* begin() const { return data_; }
  [[nodiscard]] const double* end() const { return data_ + size_; }
  [[nodiscard]] double& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const double& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] double front() const { return data_[0]; }
  [[nodiscard]] double back() const { return data_[size_ - 1]; }

 private:
  void grow(std::size_t need);

  double* data_{nullptr};
  std::size_t size_{0};
  std::size_t cap_{0};
};

}  // namespace detail

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  void add(double sample);
  // Appends another distribution's samples, preserving their insertion
  // order. Used to merge per-chunk partial results of a parallel analysis
  // back into snapshot order.
  void merge(const Ecdf& other);
  // Re-sorts after a batch of add() calls; called lazily by accessors.
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  // F(x) = P[X <= x].
  [[nodiscard]] double cdf(double x) const;
  // 1 - F(x) = P[X > x].
  [[nodiscard]] double ccdf(double x) const;
  // q-quantile for q in [0, 1]; q=0.5 is the median. Uses the lower
  // (inverse-CDF) convention. Throws std::logic_error when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  // Sorted view of the samples.
  [[nodiscard]] std::span<const double> sorted() const;
  // Pre-sizes the sample buffer (never shrinks).
  void reserve(std::size_t n);

  // Evaluates the CDF on `n` points linearly spaced over [min, max].
  [[nodiscard]] std::vector<EcdfPoint> cdf_series(std::size_t n) const;
  // Evaluates the CCDF on `n` points log-spaced over [max(min, lo_floor), max],
  // matching the paper's log-x CCDF plots.
  [[nodiscard]] std::vector<EcdfPoint> ccdf_log_series(std::size_t n, double lo_floor = 1.0) const;

 private:
  void ensure_sorted() const;
  mutable detail::SampleBuf samples_;
  mutable bool sorted_{true};
};

// Renders a series as "x<TAB>y" lines, used by bench binaries to emit
// figure data in a gnuplot-friendly form.
std::string format_series(const std::vector<EcdfPoint>& series);

}  // namespace slmob
