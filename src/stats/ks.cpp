#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>

#include "stats/ecdf.hpp"

namespace slmob {

double ks_distance(const Ecdf& a, const Ecdf& b) {
  double d = 0.0;
  for (const double x : a.sorted()) d = std::max(d, std::abs(a.cdf(x) - b.cdf(x)));
  for (const double x : b.sorted()) d = std::max(d, std::abs(a.cdf(x) - b.cdf(x)));
  return d;
}

double ks_distance(const Ecdf& a, const std::function<double(double)>& cdf) {
  double d = 0.0;
  const auto samples = a.sorted();
  const auto n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double model = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(model - lo), std::abs(model - hi)});
  }
  return d;
}

}  // namespace slmob
