#include "stats/histogram.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace slmob {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(lo < hi) || bins == 0) throw std::invalid_argument("Histogram: bad range/bins");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.resize(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins) {
  if (!(0.0 < lo && lo < hi) || bins == 0) {
    throw std::invalid_argument("LogHistogram: need 0 < lo < hi, bins > 0");
  }
  log_lo_ = std::log10(lo);
  log_hi_ = std::log10(hi);
  counts_.resize(bins, 0);
}

void LogHistogram::add(double x) {
  ++total_;
  if (x <= 0.0) {
    ++counts_.front();
    return;
  }
  const double lx = std::log10(x);
  const double t = (lx - log_lo_) / (log_hi_ - log_lo_);
  if (t < 0.0) {
    ++counts_.front();
    return;
  }
  auto bin = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

double LogHistogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("LogHistogram::bin_lo");
  const double t = static_cast<double>(bin) / static_cast<double>(counts_.size());
  return std::pow(10.0, log_lo_ + t * (log_hi_ - log_lo_));
}

double LogHistogram::bin_hi(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("LogHistogram::bin_hi");
  const double t = static_cast<double>(bin + 1) / static_cast<double>(counts_.size());
  return std::pow(10.0, log_lo_ + t * (log_hi_ - log_lo_));
}

double LogHistogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  const double width = bin_hi(bin) - bin_lo(bin);
  return static_cast<double>(count(bin)) / (static_cast<double>(total_) * width);
}

}  // namespace slmob
