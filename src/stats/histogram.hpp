// Fixed-width and logarithmic histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slmob {

// Histogram over [lo, hi) with uniform bin width. Out-of-range samples are
// clamped into the first/last bin and counted in underflow/overflow tallies.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  // Center x-value of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  // Fraction of all samples in this bin.
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
};

// Histogram with log-spaced bin edges over [lo, hi), lo > 0. Used for the
// power-law-shaped contact time distributions.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  // Empirical density within the bin: fraction / bin-width.
  [[nodiscard]] double density(std::size_t bin) const;

 private:
  double log_lo_;
  double log_hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
};

}  // namespace slmob
