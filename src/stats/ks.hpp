// Kolmogorov-Smirnov distances, used to compare measured distributions
// against calibration targets and between monitoring architectures.
#pragma once

#include <functional>
#include <span>

namespace slmob {

class Ecdf;

// Two-sample KS distance: sup_x |F1(x) - F2(x)|.
double ks_distance(const Ecdf& a, const Ecdf& b);

// One-sample KS distance against an analytic CDF.
double ks_distance(const Ecdf& a, const std::function<double(double)>& cdf);

}  // namespace slmob
