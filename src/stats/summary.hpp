// Summary statistics over a sample vector.
#pragma once

#include <span>

namespace slmob {

struct Summary {
  std::size_t count{0};
  double mean{0.0};
  double stddev{0.0};
  double min{0.0};
  double p10{0.0};
  double median{0.0};
  double p90{0.0};
  double max{0.0};
};

// Computes the summary; all-zero summary when the input is empty.
Summary summarize(std::span<const double> samples);

}  // namespace slmob
