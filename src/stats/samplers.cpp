#include "stats/samplers.hpp"

#include <cmath>

namespace slmob {

ParetoSampler::ParetoSampler(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("ParetoSampler: xm and alpha must be positive");
  }
}

double ParetoSampler::sample(Rng& rng) const {
  double u = 0.0;
  do {
    u = rng.uniform();
  } while (u <= 0.0);
  return xm_ / std::pow(u, 1.0 / alpha_);
}

BoundedParetoSampler::BoundedParetoSampler(double xm, double alpha, double cap)
    : xm_(xm), alpha_(alpha), cap_(cap) {
  if (xm <= 0.0 || alpha <= 0.0 || cap <= xm) {
    throw std::invalid_argument("BoundedParetoSampler: need 0 < xm < cap, alpha > 0");
  }
}

double BoundedParetoSampler::sample(Rng& rng) const {
  // Inversion: F(x) = (1 - (xm/x)^a) / (1 - (xm/cap)^a) on [xm, cap].
  const double u = rng.uniform();
  const double ha = std::pow(xm_ / cap_, alpha_);
  const double denom = 1.0 - u * (1.0 - ha);
  return xm_ / std::pow(denom, 1.0 / alpha_);
}

LogNormalSampler::LogNormalSampler(double median, double sigma)
    : mu_(std::log(median)), sigma_(sigma) {
  if (median <= 0.0 || sigma <= 0.0) {
    throw std::invalid_argument("LogNormalSampler: median and sigma must be positive");
  }
}

double LogNormalSampler::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.normal());
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  // Linear scan is fine: POI counts are tiny (< 32).
  for (std::size_t k = 0; k < cdf_.size(); ++k) {
    if (u <= cdf_[k]) return k;
  }
  return cdf_.size() - 1;
}

double ZipfSampler::pmf(std::size_t k) const {
  if (k >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

CategoricalSampler::CategoricalSampler(std::vector<double> weights) {
  if (weights.empty()) throw std::invalid_argument("CategoricalSampler: no weights");
  double total = 0.0;
  cdf_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) throw std::invalid_argument("CategoricalSampler: negative weight");
    total += weights[i];
    cdf_[i] = total;
  }
  if (total <= 0.0) throw std::invalid_argument("CategoricalSampler: all weights zero");
  for (auto& c : cdf_) c /= total;
}

std::size_t CategoricalSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  for (std::size_t k = 0; k < cdf_.size(); ++k) {
    if (u <= cdf_[k]) return k;
  }
  return cdf_.size() - 1;
}

}  // namespace slmob
