#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace slmob {
namespace detail {

SampleBuf::~SampleBuf() { std::free(data_); }

void SampleBuf::grow(std::size_t need) {
  std::size_t cap = cap_ == 0 ? 64 : cap_ * 2;
  if (cap < need) cap = need;
  auto* p = static_cast<double*>(std::realloc(data_, cap * sizeof(double)));
  if (p == nullptr) throw std::bad_alloc();
  data_ = p;
  cap_ = cap;
}

void SampleBuf::append(const double* src, std::size_t n) {
  if (n == 0) return;
  if (size_ + n > cap_) grow(size_ + n);
  std::memcpy(data_ + size_, src, n * sizeof(double));
  size_ += n;
}

}  // namespace detail

Ecdf::Ecdf(std::vector<double> samples)
    : samples_(samples), sorted_(false) {}

void Ecdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Ecdf::merge(const Ecdf& other) {
  if (other.samples_.empty()) return;
  samples_.append(other.samples_.begin(), other.samples_.size());
  sorted_ = false;
}

void Ecdf::reserve(std::size_t n) { samples_.reserve(n); }

void Ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Ecdf::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Ecdf::ccdf(double x) const { return 1.0 - cdf(x); }

double Ecdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Ecdf::quantile on empty distribution");
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())) - 1.0);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Ecdf::min() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::min on empty distribution");
  ensure_sorted();
  return samples_.front();
}

double Ecdf::max() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::max on empty distribution");
  ensure_sorted();
  return samples_.back();
}

double Ecdf::mean() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::mean on empty distribution");
  // Sum in sorted order: ensure_sorted() reorders samples_ lazily, so
  // summing insertion order would make mean() depend on whether a sorting
  // accessor (median/cdf/sorted) happened to run first — float addition is
  // not associative, and call order must never change a reported metric.
  ensure_sorted();
  // slmob-lint: allow(float-determinism/accumulate) -- summed in sorted (canonical) order, see comment above
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::span<const double> Ecdf::sorted() const {
  ensure_sorted();
  return {samples_.begin(), samples_.size()};
}

std::vector<EcdfPoint> Ecdf::cdf_series(std::size_t n) const {
  std::vector<EcdfPoint> out;
  if (samples_.empty() || n < 2) return out;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back({x, cdf(x)});
  }
  return out;
}

std::vector<EcdfPoint> Ecdf::ccdf_log_series(std::size_t n, double lo_floor) const {
  std::vector<EcdfPoint> out;
  if (samples_.empty() || n < 2) return out;
  ensure_sorted();
  const double lo = std::max(samples_.front(), lo_floor);
  const double hi = std::max(samples_.back(), lo * (1.0 + 1e-9));
  const double log_lo = std::log10(lo);
  const double log_hi = std::log10(hi);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        std::pow(10.0, log_lo + (log_hi - log_lo) * static_cast<double>(i) /
                                    static_cast<double>(n - 1));
    out.push_back({x, ccdf(x)});
  }
  return out;
}

std::string format_series(const std::vector<EcdfPoint>& series) {
  std::ostringstream os;
  for (const auto& p : series) os << p.x << '\t' << p.y << '\n';
  return os.str();
}

}  // namespace slmob
