#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace slmob {

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> v(samples.begin(), samples.end());
  std::sort(v.begin(), v.end());
  s.count = v.size();
  // slmob-lint: allow(float-determinism/accumulate) -- v was sorted two lines up; the sum order is canonical
  s.mean = std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
  double var = 0.0;
  for (const double x : v) var += (x - s.mean) * (x - s.mean);
  s.stddev = v.size() > 1 ? std::sqrt(var / static_cast<double>(v.size() - 1)) : 0.0;
  s.min = v.front();
  s.max = v.back();
  const auto q = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        std::min(std::ceil(p * static_cast<double>(v.size())) - 1.0,
                 static_cast<double>(v.size() - 1)));
    return v[std::max<std::size_t>(idx, 0)];
  };
  s.p10 = q(0.10);
  s.median = q(0.50);
  s.p90 = q(0.90);
  return s;
}

}  // namespace slmob
