// Distribution-shape diagnostics.
//
// The paper's headline statistical claim is that CT and ICT distributions
// have "a first power-law phase and an exponential cut-off phase". These
// helpers quantify that claim on measured samples:
//  * power-law exponent of the head via the Hill/MLE estimator,
//  * exponential rate of the tail via MLE on the excess over a threshold,
//  * a TwoPhaseFit that picks the crossover by minimising the combined
//    Kolmogorov-Smirnov distance.
#pragma once

#include <span>

namespace slmob {

struct PowerLawFit {
  double alpha{0.0};   // CCDF slope exponent: P[X > x] ~ x^-alpha
  double xmin{0.0};    // lower cutoff used for the fit
  std::size_t n{0};    // samples used
};

struct ExponentialTailFit {
  double rate{0.0};       // P[X > x] ~ exp(-rate * (x - threshold))
  double threshold{0.0};  // tail threshold used
  std::size_t n{0};
};

struct TwoPhaseFit {
  PowerLawFit head;
  ExponentialTailFit tail;
  double crossover{0.0};  // x at which the model switches phase
  double ks{1.0};         // KS distance of the combined model
};

// MLE (Hill) estimate of the power-law exponent for samples >= xmin.
// Returns alpha = 0 when fewer than 2 samples qualify.
PowerLawFit fit_power_law(std::span<const double> samples, double xmin);

// MLE exponential fit to the excess of samples above `threshold`.
ExponentialTailFit fit_exponential_tail(std::span<const double> samples, double threshold);

// Fits the two-phase (power-law head + exponential tail) model, scanning
// candidate crossovers between the q_lo and q_hi sample quantiles.
TwoPhaseFit fit_two_phase(std::span<const double> samples, double xmin,
                          double q_lo = 0.3, double q_hi = 0.95);

}  // namespace slmob
