// Random-variate samplers used by the avatar population and mobility models.
//
// Each sampler is a small value type bound to no Rng; callers pass the Rng at
// draw time so one parameterisation can be shared across streams.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace slmob {

// Pareto (power-law) distribution with scale xm > 0 and shape alpha > 0:
// P[X > x] = (xm / x)^alpha for x >= xm.
class ParetoSampler {
 public:
  ParetoSampler(double xm, double alpha);
  [[nodiscard]] double sample(Rng& rng) const;
  [[nodiscard]] double xm() const { return xm_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double xm_;
  double alpha_;
};

// Pareto truncated to [xm, cap]; sampled by inversion of the truncated CDF,
// so no rejection loop is needed. Models quantities with a power-law body and
// a hard upper limit (e.g. pause times bounded by session length).
class BoundedParetoSampler {
 public:
  BoundedParetoSampler(double xm, double alpha, double cap);
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double xm_;
  double alpha_;
  double cap_;
};

// Log-normal given the median and the sigma of the underlying normal.
// Session durations in the trace are well described by a log-normal with a
// hard cap (the paper: 90% of sessions < 1 h, longest ~4 h).
class LogNormalSampler {
 public:
  LogNormalSampler(double median, double sigma);
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double mu_;
  double sigma_;
};

// Zipf distribution over ranks {0, .., n-1}: P[rank k] proportional to
// 1/(k+1)^s. Used for point-of-interest popularity.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);
  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  // Probability mass of rank k.
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
};

// Samples an index according to explicit non-negative weights.
class CategoricalSampler {
 public:
  explicit CategoricalSampler(std::vector<double> weights);
  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace slmob
