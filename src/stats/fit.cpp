#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace slmob {
namespace {

// Combined model CCDF: power law on [xmin, crossover), scaled exponential
// beyond. Continuous at the crossover.
double model_ccdf(double x, const TwoPhaseFit& fit) {
  if (x < fit.head.xmin) return 1.0;
  if (x < fit.crossover) return std::pow(x / fit.head.xmin, -fit.head.alpha);
  const double at_cross = std::pow(fit.crossover / fit.head.xmin, -fit.head.alpha);
  return at_cross * std::exp(-fit.tail.rate * (x - fit.crossover));
}

}  // namespace

PowerLawFit fit_power_law(std::span<const double> samples, double xmin) {
  PowerLawFit fit;
  fit.xmin = xmin;
  double sum_log = 0.0;
  std::size_t n = 0;
  for (const double x : samples) {
    if (x >= xmin && x > 0.0) {
      sum_log += std::log(x / xmin);
      ++n;
    }
  }
  fit.n = n;
  if (n >= 2 && sum_log > 0.0) {
    fit.alpha = static_cast<double>(n) / sum_log;
  }
  return fit;
}

ExponentialTailFit fit_exponential_tail(std::span<const double> samples, double threshold) {
  ExponentialTailFit fit;
  fit.threshold = threshold;
  double sum_excess = 0.0;
  std::size_t n = 0;
  for (const double x : samples) {
    if (x >= threshold) {
      sum_excess += x - threshold;
      ++n;
    }
  }
  fit.n = n;
  if (n >= 2 && sum_excess > 0.0) {
    fit.rate = static_cast<double>(n) / sum_excess;
  }
  return fit;
}

TwoPhaseFit fit_two_phase(std::span<const double> samples, double xmin, double q_lo,
                          double q_hi) {
  TwoPhaseFit best;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() < 10) return best;

  const auto quant = [&](double q) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  };

  constexpr int kCandidates = 24;
  for (int c = 0; c < kCandidates; ++c) {
    const double q = q_lo + (q_hi - q_lo) * static_cast<double>(c) /
                                static_cast<double>(kCandidates - 1);
    const double crossover = quant(q);
    if (crossover <= xmin) continue;

    TwoPhaseFit cand;
    cand.crossover = crossover;
    // Head: samples in [xmin, crossover). Restrict the power-law fit window.
    std::vector<double> head;
    for (const double x : sorted) {
      if (x >= xmin && x < crossover) head.push_back(x);
    }
    cand.head = fit_power_law(head, xmin);
    cand.tail = fit_exponential_tail(sorted, crossover);
    if (cand.head.n < 5 || cand.tail.n < 5 || cand.head.alpha <= 0.0 || cand.tail.rate <= 0.0) {
      continue;
    }

    // KS distance over the empirical support above xmin.
    double ks = 0.0;
    std::size_t count_above = 0;
    for (const double x : sorted) {
      if (x >= xmin) ++count_above;
    }
    if (count_above == 0) continue;
    std::size_t seen = 0;
    for (const double x : sorted) {
      if (x < xmin) continue;
      ++seen;
      const double emp_ccdf =
          1.0 - static_cast<double>(seen) / static_cast<double>(count_above);
      ks = std::max(ks, std::abs(emp_ccdf - model_ccdf(x, cand)));
    }
    cand.ks = ks;
    if (cand.ks < best.ks) best = cand;
  }
  return best;
}

}  // namespace slmob
