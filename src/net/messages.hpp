// Message catalogue of the metaverse wire protocol.
//
// The vocabulary mirrors the subset of the 2008 Second Life UDP protocol
// that libsecondlife used for map crawling: circuit setup, agent movement,
// chat, and CoarseLocationUpdate — the minimap feed carrying the quantised
// position of every avatar in the region, which is the crawler's raw data.
//
// Wire form: u8 message type, then the message body (little-endian, see
// util/bytes.hpp). Messages ride inside circuit packets (net/circuit.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.hpp"

namespace slmob {

enum class MessageType : std::uint8_t {
  kLoginRequest = 1,
  kLoginResponse = 2,
  kUseCircuitCode = 3,
  kRegionHandshake = 4,
  kCompleteAgentMovement = 5,
  kAgentUpdate = 6,
  kCoarseLocationUpdate = 7,
  kChatFromViewer = 8,
  kChatFromSimulator = 9,
  kLogoutRequest = 10,
  kKickUser = 11,
};

struct LoginRequest {
  std::string first_name;
  std::string last_name;
  std::uint64_t password_hash{0};
  std::uint32_t circuit_code{0};
};

struct LoginResponse {
  bool ok{false};
  std::uint32_t agent_id{0};
  std::string region_name;
  float spawn_x{0.0f};
  float spawn_y{0.0f};
  float spawn_z{0.0f};
  std::string error;  // set when !ok (e.g. "region full")
};

struct UseCircuitCode {
  std::uint32_t circuit_code{0};
  std::uint32_t agent_id{0};
};

struct RegionHandshake {
  std::string region_name;
  float region_size{256.0f};
  std::uint32_t capacity{100};
};

struct CompleteAgentMovement {
  std::uint32_t agent_id{0};
};

// Agent movement command. Flag bit 0: sit; bit 1: stand.
struct AgentUpdate {
  std::uint32_t agent_id{0};
  float target_x{0.0f};
  float target_y{0.0f};
  float target_z{0.0f};
  float speed{0.0f};
  std::uint8_t flags{0};
};
inline constexpr std::uint8_t kAgentFlagSit = 0x01;
inline constexpr std::uint8_t kAgentFlagStand = 0x02;

// One avatar in the minimap feed. Positions are quantised exactly like the
// historical protocol: x/y to whole metres in a u8 (region is 256 m), z
// divided by 4 ("z4"). A sitting avatar reports (0, 0, 0) — the quirk §3 of
// the paper calls out.
struct CoarseEntry {
  std::uint32_t agent_id{0};
  std::uint8_t x{0};
  std::uint8_t y{0};
  std::uint8_t z4{0};
};

struct CoarseLocationUpdate {
  std::vector<CoarseEntry> entries;
};

struct ChatFromViewer {
  std::uint32_t agent_id{0};
  std::string message;
  std::uint8_t channel{0};
};

struct ChatFromSimulator {
  std::uint32_t from_agent{0};
  std::string from_name;
  std::string message;
};

struct LogoutRequest {
  std::uint32_t agent_id{0};
};

struct KickUser {
  std::string reason;
};

using Message =
    std::variant<LoginRequest, LoginResponse, UseCircuitCode, RegionHandshake,
                 CompleteAgentMovement, AgentUpdate, CoarseLocationUpdate, ChatFromViewer,
                 ChatFromSimulator, LogoutRequest, KickUser>;

[[nodiscard]] MessageType message_type(const Message& msg);

// Serialises type byte + body.
std::vector<std::uint8_t> encode_message(const Message& msg);

// Same encoding into a caller-owned writer (cleared first). Reusing one
// writer across packets keeps the warm send path allocation-free.
void encode_message_to(const Message& msg, ByteWriter& w);

// Parses a message; throws DecodeError on malformed input.
Message decode_message(std::span<const std::uint8_t> bytes);

// Parses into a caller-owned Message, reusing its storage when the incoming
// type matches the currently held alternative (the per-tick
// CoarseLocationUpdate keeps its entries capacity). Throws DecodeError on
// malformed input; `out` may hold a partially decoded value afterwards.
void decode_message_into(std::span<const std::uint8_t> bytes, Message& out);

// Quantisation helpers shared by server (encode) and analyses (tests).
[[nodiscard]] CoarseEntry quantize_coarse(std::uint32_t agent_id, double x, double y,
                                          double z, bool sitting);
// Decoded coarse position (metre resolution; z recovered as z4 * 4).
struct CoarsePosition {
  double x{0.0};
  double y{0.0};
  double z{0.0};
};
[[nodiscard]] CoarsePosition dequantize_coarse(const CoarseEntry& entry);

}  // namespace slmob
