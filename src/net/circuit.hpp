// Circuit: the reliability layer between one client and one sim server,
// modelled on the Second Life UDP circuit. Each packet carries a sequence
// number; packets flagged reliable are retransmitted until acked (acks are
// piggybacked onto outgoing traffic or flushed standalone). Receivers
// de-duplicate retransmissions by sequence number.
//
// Packet layout: u8 version | u32 seq | u8 flags | u8 n_acks | u32 acks[n]
// | message bytes (absent for pure-ack packets).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "net/messages.hpp"
#include "net/network.hpp"
#include "util/time.hpp"

namespace slmob {

inline constexpr std::uint8_t kCircuitVersion = 1;
inline constexpr std::uint8_t kPacketFlagReliable = 0x01;

struct CircuitStats {
  std::uint64_t packets_sent{0};
  std::uint64_t packets_received{0};
  std::uint64_t retransmits{0};
  std::uint64_t duplicates_dropped{0};
  std::uint64_t acks_sent{0};
  std::uint64_t acks_received{0};
  std::uint64_t reliable_failures{0};  // gave up after max retries
  std::uint64_t rtt_samples{0};        // acks that fed the RTO estimator
  std::uint64_t rto_backoffs{0};       // per-packet RTO doublings
  // Reliable sends held back because the unacked window was at max_unacked
  // (backpressure events; the message is transmitted later, never lost).
  std::uint64_t deferred_sends{0};

  // Summing across circuits: a reconnecting client retires one endpoint per
  // relogin, and the run summary wants the whole session's transport story.
  CircuitStats& operator+=(const CircuitStats& o) {
    packets_sent += o.packets_sent;
    packets_received += o.packets_received;
    retransmits += o.retransmits;
    duplicates_dropped += o.duplicates_dropped;
    acks_sent += o.acks_sent;
    acks_received += o.acks_received;
    reliable_failures += o.reliable_failures;
    rtt_samples += o.rtt_samples;
    rto_backoffs += o.rto_backoffs;
    deferred_sends += o.deferred_sends;
    return *this;
  }
};

struct CircuitParams {
  // Retransmission timing is adaptive (RFC 6298): the endpoint keeps an
  // SRTT/RTTVAR estimate from acks of never-retransmitted packets (Karn's
  // rule) and sets RTO = SRTT + max(0.1 s, 4·RTTVAR), clamped to
  // [min_rto, max_rto]. Until the first sample, initial_rto applies (SL used
  // ~3-4 s). Each retransmission of a packet doubles that packet's RTO,
  // capped at max_rto.
  Seconds initial_rto{3.0};
  Seconds min_rto{0.5};
  Seconds max_rto{24.0};
  int max_retries{8};        // reliable sends abandoned after this many RTOs
  std::size_t ack_batch{32}; // flush a standalone ack packet at this backlog
  // Bounded send window: at most this many reliable packets awaiting acks.
  // Further reliable sends are deferred (built, queued, transmitted as acks
  // free slots) rather than dropped — explicit backpressure instead of an
  // unbounded retransmission map. Generous default: fault-free runs never
  // defer.
  std::size_t max_unacked{1024};
  // Cap on the deferred queue itself; overflowing it fails the circuit
  // loudly (reliable_failures + failure callback) instead of growing without
  // bound — the same contract as exhausting retries.
  std::size_t max_deferred{8192};
};

// One directional endpoint of a circuit. The owner (client or server) feeds
// incoming datagrams from the peer into `on_datagram` and calls `tick`
// regularly; decoded messages are handed to the delivery callback.
class CircuitEndpoint {
 public:
  // The delivered Message is owned by the endpoint and reused for the next
  // packet: handlers must copy (or move fields out of) anything they keep.
  using DeliverFn = std::function<void(Message&)>;
  // Invoked when a reliable message exhausts its retries (circuit dead).
  using FailureFn = std::function<void()>;

  // `initial_seq` is the first sequence number used (like a TCP ISN): a
  // reconnecting endpoint must pick a fresh value, or a stale peer session
  // would discard its packets as duplicates.
  CircuitEndpoint(SimNetwork& network, NodeId self, NodeId peer,
                  CircuitParams params = {}, std::uint32_t initial_seq = 1);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_on_failure(FailureFn fn) { on_failure_ = std::move(fn); }

  // Sends a message; reliable messages are retransmitted until acked.
  // Reliable messages always travel as control-plane traffic; `cls` only
  // classifies unreliable sends (default: best-effort session).
  void send(const Message& msg, bool reliable,
            PacketClass cls = PacketClass::kSession);

  // Sends an already-encoded message body (type byte + payload, as produced
  // by encode_message_to). Lets a server encode a broadcast once and fan it
  // out over every circuit without re-serialising per receiver.
  void send_encoded(std::span<const std::uint8_t> body, bool reliable,
                    PacketClass cls = PacketClass::kSession);

  // Feeds one datagram received from the peer.
  void on_datagram(std::span<const std::uint8_t> bytes);

  // Drives retransmissions and ack flushing.
  void tick(Seconds now);

  [[nodiscard]] const CircuitStats& stats() const { return stats_; }
  [[nodiscard]] NodeId peer() const { return peer_; }
  [[nodiscard]] bool failed() const { return failed_; }
  // Current base RTO for new reliable sends (initial_rto until the first
  // RTT sample arrives).
  [[nodiscard]] Seconds current_rto() const { return rto_; }
  // Smoothed RTT estimate; negative until the first sample.
  [[nodiscard]] Seconds srtt() const { return srtt_; }
  // Virtual time of the most recent RTT sample; negative until one exists.
  // Lets consumers distinguish a *current* RTT estimate from a stale one
  // (this circuit's reliable traffic can be sparse).
  [[nodiscard]] Seconds last_rtt_sample_at() const { return last_rtt_sample_at_; }

 private:
  struct Pending {
    std::uint32_t seq;
    std::vector<std::uint8_t> packet;  // full packet bytes as first sent
    Seconds next_retry;
    int retries_left;
    Seconds sent_at;          // first transmission time (for RTT sampling)
    bool retransmitted;       // Karn: retransmitted packets never feed SRTT
    Seconds rto;              // this packet's RTO, doubled per retransmit
  };

  void sample_rtt(Seconds rtt);

  // Builds the packet into the reusable packet scratch writer and returns a
  // view of it (valid until the next build).
  std::span<const std::uint8_t> build_packet(std::uint32_t seq, std::uint8_t flags,
                                             std::span<const std::uint8_t> body);
  void flush_acks(bool force);
  void transmit(std::span<const std::uint8_t> packet,
                PacketClass cls = PacketClass::kControl);
  // Transmits deferred reliable packets while the unacked window has room.
  void drain_deferred();

  SimNetwork& network_;
  NodeId self_;
  NodeId peer_;
  CircuitParams params_;
  DeliverFn deliver_;
  FailureFn on_failure_;

  struct Deferred {
    std::uint32_t seq;
    std::vector<std::uint8_t> packet;
  };

  std::uint32_t next_seq_{1};
  std::map<std::uint32_t, Pending> unacked_;
  // Reliable packets (seq already assigned) awaiting a window slot, FIFO so
  // transmissions stay in sequence order.
  std::deque<Deferred> deferred_;
  std::vector<std::uint32_t> acks_to_send_;
  std::set<std::uint32_t> seen_reliable_;
  Seconds now_{0.0};
  bool failed_{false};
  CircuitStats stats_;
  // RFC 6298 estimator state. srtt_ < 0 means "no sample yet".
  Seconds srtt_{-1.0};
  Seconds last_rtt_sample_at_{-1.0};
  Seconds rttvar_{0.0};
  Seconds rto_{0.0};  // set from params in the constructor
  // Scratch buffers reused across packets so the warm send/receive path
  // does not allocate: message body, full packet, and the decoded inbound
  // message handed to deliver_.
  ByteWriter body_scratch_;
  ByteWriter packet_scratch_;
  Message inbound_;
};

}  // namespace slmob
