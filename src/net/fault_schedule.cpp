#include "net/fault_schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace slmob {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kBurstLoss: return "burst-loss";
    case FaultKind::kLatencySpike: return "latency-spike";
    case FaultKind::kPartitionInbound: return "partition-inbound";
    case FaultKind::kPartitionOutbound: return "partition-outbound";
    case FaultKind::kRegionCrash: return "region-crash";
    case FaultKind::kCapacityFlap: return "capacity-flap";
    case FaultKind::kCollectorCrash: return "collector-crash";
    case FaultKind::kCollectorSlow: return "collector-slow";
    case FaultKind::kFlashCrowd: return "flash-crowd";
    case FaultKind::kShardCrash: return "shard-crash";
    case FaultKind::kShardStall: return "shard-stall";
  }
  return "unknown";
}

void FaultSchedule::add(FaultWindow window) {
  if (window.start < 0.0 || window.end <= window.start) {
    throw std::invalid_argument("FaultSchedule::add: window must have 0 <= start < end");
  }
  if ((window.kind == FaultKind::kBurstLoss || window.kind == FaultKind::kCapacityFlap) &&
      (window.magnitude < 0.0 || window.magnitude > 1.0)) {
    throw std::invalid_argument("FaultSchedule::add: magnitude must be in [0,1]");
  }
  if ((window.kind == FaultKind::kLatencySpike || window.kind == FaultKind::kCollectorSlow) &&
      window.magnitude < 0.0) {
    throw std::invalid_argument("FaultSchedule::add: latency spike must be >= 0");
  }
  if (window.kind == FaultKind::kFlashCrowd && window.magnitude < 1.0) {
    throw std::invalid_argument("FaultSchedule::add: flash-crowd factor must be >= 1");
  }
  windows_.push_back(window);
}

bool FaultSchedule::drops_datagram(Seconds t, NodeId from, NodeId to) const {
  for (const auto& w : windows_) {
    if (!w.active_at(t)) continue;
    switch (w.kind) {
      case FaultKind::kBlackout:
        return true;
      case FaultKind::kPartitionInbound:
        if (!w.node || *w.node == to) return true;
        break;
      case FaultKind::kPartitionOutbound:
        if (!w.node || *w.node == from) return true;
        break;
      default:
        break;
    }
  }
  return false;
}

double FaultSchedule::extra_loss_at(Seconds t) const {
  double pass = 1.0;
  for (const auto& w : windows_) {
    if (w.kind == FaultKind::kBurstLoss && w.active_at(t)) pass *= 1.0 - w.magnitude;
  }
  return 1.0 - pass;
}

Seconds FaultSchedule::extra_latency_at(Seconds t) const {
  Seconds extra = 0.0;
  for (const auto& w : windows_) {
    if (w.kind == FaultKind::kLatencySpike && w.active_at(t)) extra += w.magnitude;
  }
  return extra;
}

bool FaultSchedule::region_down_at(Seconds t) const {
  for (const auto& w : windows_) {
    if (w.kind == FaultKind::kRegionCrash && w.active_at(t)) return true;
  }
  return false;
}

double FaultSchedule::capacity_factor_at(Seconds t) const {
  double factor = 1.0;
  for (const auto& w : windows_) {
    if (w.kind == FaultKind::kCapacityFlap && w.active_at(t)) {
      factor = std::min(factor, w.magnitude);
    }
  }
  return factor;
}

bool FaultSchedule::collector_down_at(Seconds t) const {
  for (const auto& w : windows_) {
    if (w.kind == FaultKind::kCollectorCrash && w.active_at(t)) return true;
  }
  return false;
}

Seconds FaultSchedule::collector_delay_at(Seconds t) const {
  Seconds extra = 0.0;
  for (const auto& w : windows_) {
    if (w.kind == FaultKind::kCollectorSlow && w.active_at(t)) extra += w.magnitude;
  }
  return extra;
}

double FaultSchedule::flash_crowd_factor_at(Seconds t) const {
  double factor = 1.0;
  for (const auto& w : windows_) {
    if (w.kind == FaultKind::kFlashCrowd && w.active_at(t)) {
      factor = std::max(factor, w.magnitude);
    }
  }
  return factor;
}

std::vector<FaultWindow> FaultSchedule::shard_faults() const {
  std::vector<FaultWindow> out;
  for (const auto& w : windows_) {
    if (w.kind == FaultKind::kShardCrash || w.kind == FaultKind::kShardStall) {
      out.push_back(w);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FaultWindow& a, const FaultWindow& b) { return a.start < b.start; });
  return out;
}

std::vector<FaultWindow> FaultSchedule::windows_of(FaultKind kind) const {
  std::vector<FaultWindow> out;
  for (const auto& w : windows_) {
    if (w.kind == kind) out.push_back(w);
  }
  std::sort(out.begin(), out.end(),
            [](const FaultWindow& a, const FaultWindow& b) { return a.start < b.start; });
  return out;
}

namespace {

// Scripted pair of 10-minute transport blackouts at 1/3 and 2/3 of the run
// (the ISSUE's canonical scenario). Short runs shrink the outage so the
// schedule stays valid down to a few minutes of virtual time.
void add_blackouts(FaultSchedule& s, Seconds duration) {
  const Seconds outage = std::min(600.0, duration / 6.0);
  if (outage <= 0.0) return;
  s.add({FaultKind::kBlackout, duration / 3.0, duration / 3.0 + outage, 1.0, {}});
  s.add({FaultKind::kBlackout, 2.0 * duration / 3.0, 2.0 * duration / 3.0 + outage, 1.0, {}});
}

// Seeded loss bursts: on average one per 40 minutes, 60-180 s long, at
// 60-95 % loss, with a 60 s latency spike riding the first burst.
void add_bursts(FaultSchedule& s, Seconds duration, Rng& rng) {
  Seconds t = rng.exponential(1200.0);
  bool first = true;
  while (t < duration) {
    const Seconds len = rng.uniform(60.0, 180.0);
    const double rate = rng.uniform(0.6, 0.95);
    const Seconds end = std::min(t + len, duration);
    if (end > t) {
      s.add({FaultKind::kBurstLoss, t, end, rate, {}});
      if (first) {
        s.add({FaultKind::kLatencySpike, t, std::min(t + 60.0, duration), 1.5, {}});
        first = false;
      }
    }
    t = end + rng.exponential(2400.0);
  }
}

// Seeded region instability: crashes (30-120 s down) on average one per
// hour, plus one long half-capacity flap over the middle of the run.
void add_region_flaps(FaultSchedule& s, Seconds duration, Rng& rng) {
  Seconds t = rng.exponential(1800.0);
  while (t < duration) {
    const Seconds down = rng.uniform(30.0, 120.0);
    const Seconds end = std::min(t + down, duration);
    if (end > t) s.add({FaultKind::kRegionCrash, t, end, 1.0, {}});
    t = end + rng.exponential(3600.0);
  }
  const Seconds flap_len = duration / 4.0;
  if (flap_len > 0.0) {
    s.add({FaultKind::kCapacityFlap, duration * 0.375, duration * 0.375 + flap_len, 0.5, {}});
  }
}

// Scripted pair of collector outages (the paper's external web server going
// away) at 1/4 and 5/8 of the run, up to 5 minutes each. Sensors keep
// sweeping; flushes time out (408) and are retried until the collector is
// back, exercising the at-least-once-with-dedup path.
// Scripted shard-process faults for supervised runs: three crashes and one
// stall spread across the run. No RNG — appended after the seeded builders
// so the transport/server windows of "chaos" are byte-identical with and
// without the shard faults.
void add_shard_faults(FaultSchedule& s, Seconds duration) {
  for (const double frac : {0.30, 0.55, 0.80}) {
    s.add({FaultKind::kShardCrash, duration * frac, duration * frac + 1.0, 1.0, {}});
  }
  s.add({FaultKind::kShardStall, duration * 0.45, duration * 0.45 + 1.0, 1.0, {}});
}

void add_collector_crashes(FaultSchedule& s, Seconds duration) {
  const Seconds outage = std::min(300.0, duration / 8.0);
  if (outage <= 0.0) return;
  s.add({FaultKind::kCollectorCrash, duration * 0.25, duration * 0.25 + outage, 1.0, {}});
  s.add({FaultKind::kCollectorCrash, duration * 0.625, duration * 0.625 + outage, 1.0, {}});
}

// Load-spike scenario: a 10x flash crowd over the middle third of the run
// while the collector answers slowly — the two pressures the paper's rig met
// at Isle of View-class events. Scripted without RNG so the window edges are
// exact fractions of the duration (bench gates key off them).
void add_overload(FaultSchedule& s, Seconds duration) {
  const Seconds surge_start = duration / 3.0;
  const Seconds surge_end = 2.0 * duration / 3.0;
  if (surge_end <= surge_start) return;
  s.add({FaultKind::kFlashCrowd, surge_start, surge_end, 10.0, {}});
  // Saturation inflates queueing delay: every delivery in the surge window
  // carries extra seconds, so the in-flight population grows with load
  // (depth ~ rate x delay) and a bounded in-flight queue starts shedding its
  // snapshot class — the congestion face of the same overload the flash
  // crowd models. 25 s is bufferbloat territory, deliberately: the rig's
  // steady send rate is low, and the point of the scenario is to drive the
  // queue into its bound, not to simulate a mildly busy evening.
  s.add({FaultKind::kLatencySpike, surge_start, surge_end, 25.0, {}});
  // The slow collector starts slightly before the crowd and lingers after it:
  // a saturated web server does not recover the instant arrivals drop. The
  // 12 s delay deliberately exceeds the sensors' 10 s HTTP timeout, so
  // in-window flushes time out (and widen) instead of merely arriving late.
  const Seconds slow_start = std::max(0.0, surge_start - duration / 12.0);
  const Seconds slow_end = std::min(duration, surge_end + duration / 12.0);
  s.add({FaultKind::kCollectorSlow, slow_start, slow_end, 12.0, {}});
}

}  // namespace

FaultSchedule FaultSchedule::scenario(const std::string& name, Seconds duration,
                                      std::uint64_t seed) {
  if (duration <= 0.0) {
    throw std::invalid_argument("FaultSchedule::scenario: duration must be > 0");
  }
  FaultSchedule s;
  Rng rng(seed ^ 0xfa017c4ed5ca1eULL);
  if (name == "none") {
    return s;
  }
  if (name == "blackouts") {
    add_blackouts(s, duration);
    return s;
  }
  if (name == "burst-loss") {
    add_bursts(s, duration, rng);
    return s;
  }
  if (name == "region-flaps") {
    add_region_flaps(s, duration, rng);
    return s;
  }
  if (name == "collector-crash") {
    add_collector_crashes(s, duration);
    return s;
  }
  if (name == "overload") {
    add_overload(s, duration);
    return s;
  }
  if (name == "chaos") {
    add_blackouts(s, duration);
    add_bursts(s, duration, rng);
    add_region_flaps(s, duration, rng);
    return s;
  }
  if (name == "shard-chaos") {
    add_blackouts(s, duration);
    add_bursts(s, duration, rng);
    add_region_flaps(s, duration, rng);
    add_shard_faults(s, duration);
    return s;
  }
  throw std::invalid_argument("FaultSchedule::scenario: unknown scenario '" + name + "'");
}

const std::vector<std::string>& FaultSchedule::scenario_names() {
  static const std::vector<std::string> names{"none",         "blackouts",
                                              "burst-loss",   "region-flaps",
                                              "collector-crash", "overload",
                                              "chaos",        "shard-chaos"};
  return names;
}

}  // namespace slmob
