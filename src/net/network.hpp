// SimNetwork: an in-process datagram network.
//
// Models the UDP path between the crawler host, the sim servers and the
// sensor web collector: configurable one-way latency (uniform in a range,
// which also yields reordering), i.i.d. loss, and an MTU. Deterministic
// given the seed. A FaultSchedule composes scripted outage windows
// (blackouts, loss bursts, latency spikes, one-way partitions) on top of
// the i.i.d. knobs; with no schedule installed the fault path costs nothing
// and the RNG stream is untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/fault_schedule.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace slmob {

// Priority class of a datagram, used by overload shedding: when the bounded
// in-flight queue is full, the lowest class is shed first and control-plane
// traffic is never shed at all (logins, kicks, acks must survive a flash
// crowd for the rig to stay correct).
enum class PacketClass : std::uint8_t {
  kControl = 0,   // handshakes, reliable messages, acks — never shed
  kSession = 1,   // best-effort session traffic (chat, movement)
  kSnapshot = 2,  // bulk observation feeds (coarse minimap, sensor flushes)
};

struct NetworkParams {
  Seconds latency_min{0.02};
  Seconds latency_max{0.08};
  double loss_rate{0.0};
  std::size_t mtu{1400};  // datagrams larger than this are dropped (logged)
  // Bound on concurrently in-flight datagrams. Non-control sends past this
  // depth are shed (counted per class); control is always admitted. The
  // default is generous enough that fault-free runs never shed — the bound
  // exists so a flash crowd degrades by policy instead of growing the heap
  // without limit.
  std::size_t max_in_flight{65536};
};

struct NetworkStats {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t lost{0};
  std::uint64_t oversize_dropped{0};
  // Datagrams dropped by a scheduled fault window (also counted in `lost`
  // when the drop came from a burst-loss draw).
  std::uint64_t fault_dropped{0};
  // Datagrams shed because the in-flight queue was at max_in_flight, by
  // class. Control-plane datagrams are never shed (no counter needed).
  std::uint64_t shed_session{0};
  std::uint64_t shed_snapshot{0};
  // High-water mark of the in-flight queue: how close the run came to the
  // max_in_flight bound (sizing aid for the cap, surfaced by the bench).
  std::uint64_t in_flight_peak{0};

  [[nodiscard]] std::uint64_t overload_shed() const {
    return shed_session + shed_snapshot;
  }
};

class SimNetwork {
 public:
  // Handler invoked on delivery: (source node, payload bytes).
  using ReceiveFn = std::function<void(NodeId from, std::span<const std::uint8_t>)>;

  explicit SimNetwork(NetworkParams params = {}, std::uint64_t seed = 1);

  NodeId register_node(ReceiveFn on_receive);
  // Replaces a node's handler (used when a component is built after its
  // address must be known).
  void set_handler(NodeId node, ReceiveFn on_receive);

  // Queues a datagram; it is delivered (or dropped) during a later tick.
  void send(NodeId from, NodeId to, std::vector<std::uint8_t> payload,
            PacketClass cls = PacketClass::kSession);
  // Same, but the payload is copied into a pooled buffer: callers that keep
  // (and reuse) their own scratch packet avoid an allocation per send once
  // the pool is warm.
  void send(NodeId from, NodeId to, std::span<const std::uint8_t> payload,
            PacketClass cls = PacketClass::kSession);

  // Delivers every packet whose arrival time is <= now + dt.
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const NetworkParams& params() const { return params_; }
  void set_params(NetworkParams params) { params_ = params; }

  // Installs a scripted fault schedule (transport kinds only are consulted;
  // server kinds are ignored here). Replaces any previous schedule.
  void set_faults(FaultSchedule faults) { faults_ = std::move(faults); }
  [[nodiscard]] const FaultSchedule& faults() const { return faults_; }

  // Transport RNG stream position (latency/loss draws); see World::rng_state.
  [[nodiscard]] std::array<std::uint64_t, 4> rng_state() const { return rng_.state(); }

 private:
  struct InFlight {
    Seconds arrival;
    std::uint64_t order;  // tie-break for determinism
    NodeId from;
    NodeId to;
    std::vector<std::uint8_t> payload;
    bool operator>(const InFlight& o) const {
      if (arrival != o.arrival) return arrival > o.arrival;
      return order > o.order;
    }
  };

  // Decides drop/latency for a datagram about to be queued. Returns false
  // when the datagram is dropped (stats already updated); otherwise sets
  // `latency` to the delivery delay.
  bool admit(NodeId from, NodeId to, std::size_t payload_size, PacketClass cls,
             Seconds& latency);
  void enqueue(NodeId from, NodeId to, Seconds latency, std::vector<std::uint8_t> payload);
  [[nodiscard]] std::vector<std::uint8_t> acquire_buffer();
  void release_buffer(std::vector<std::uint8_t> buf);

  NetworkParams params_;
  FaultSchedule faults_;
  Rng rng_;
  std::vector<ReceiveFn> handlers_;
  // Min-heap on (arrival, order) via std::push_heap/pop_heap rather than
  // std::priority_queue, whose const top() forbids moving the payload out.
  std::vector<InFlight> in_flight_;
  // Retired payload buffers, reused by the span-overload of send so the
  // steady-state delivery loop performs no allocation.
  std::vector<std::vector<std::uint8_t>> buffer_pool_;
  std::uint64_t order_{0};
  Seconds clock_{0.0};
  NetworkStats stats_;
};

}  // namespace slmob
