// FaultSchedule: deterministic, scripted fault injection for the whole
// measurement rig.
//
// The paper's two architectures are defined by how they fail: sensor objects
// expire and throttle, and the crawler gets logged out and must re-login,
// leaving holes in the trace (La & Michiardi §2 blame libsecondlife
// instabilities for interrupted long traces). A FaultSchedule scripts those
// outages as explicit time windows — transport blackouts, loss bursts,
// latency spikes, one-way partitions, region crashes and capacity flaps —
// so a chaos run is exactly reproducible from its seed and every component
// (SimNetwork, SimServer) degrades on the same clock.
//
// The schedule itself is pure data: components query it with the current
// virtual time. An empty schedule is free — fault-free runs take the exact
// code paths (and RNG draws) they always did.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace slmob {

using NodeId = std::uint32_t;

enum class FaultKind : std::uint8_t {
  // Transport faults (consumed by SimNetwork):
  kBlackout,           // every datagram sent during the window is dropped
  kBurstLoss,          // additional i.i.d. loss at rate `magnitude`
  kLatencySpike,       // `magnitude` seconds added to each delivery
  kPartitionInbound,   // datagrams TO `node` are dropped (one-way partition)
  kPartitionOutbound,  // datagrams FROM `node` are dropped
  // Server faults (consumed by SimServer):
  kRegionCrash,        // sessions dropped, logins refused until the window ends
  kCapacityFlap,       // admission capacity scaled by `magnitude` in [0,1]
  // Collector faults (consumed by HttpCollector):
  kCollectorCrash,     // the web collector is down: requests vanish, no ack
  kCollectorSlow,      // responses delayed by `magnitude` seconds (saturated web
                       // server); sensors keep their requests pending longer
  // Load faults (consumed by World via Testbed):
  kFlashCrowd,         // arrival rate multiplied by `magnitude` (event surge)
  // Process faults (consumed by the run supervisor, core/supervisor.hpp;
  // invisible to network/server/collector — an unsupervised run ignores
  // them entirely):
  kShardCrash,         // the shard's process dies when it reaches `start`
  kShardStall,         // the shard wedges at `start` until the watchdog kills it
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

// One scheduled fault: active over [start, end).
struct FaultWindow {
  FaultKind kind{FaultKind::kBlackout};
  Seconds start{0.0};
  Seconds end{0.0};
  // kBurstLoss: loss rate in [0,1]; kLatencySpike: added seconds;
  // kCapacityFlap: capacity factor in [0,1]. Ignored otherwise.
  double magnitude{1.0};
  // Partition target; a partition window without a node drops everything in
  // the given direction (equivalent to a blackout).
  std::optional<NodeId> node;

  FaultWindow() = default;
  FaultWindow(FaultKind k, Seconds s, Seconds e, double m = 1.0,
              std::optional<NodeId> n = std::nullopt)
      : kind(k), start(s), end(e), magnitude(m), node(n) {}

  [[nodiscard]] bool active_at(Seconds t) const { return t >= start && t < end; }
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  // Appends a window; throws std::invalid_argument on end <= start, a
  // negative start, or an out-of-range magnitude for the kind.
  void add(FaultWindow window);

  [[nodiscard]] bool empty() const { return windows_.empty(); }
  [[nodiscard]] const std::vector<FaultWindow>& windows() const { return windows_; }

  // --- Transport queries (SimNetwork::send) ---------------------------------
  // True when a blackout or a matching partition window covers `t`.
  [[nodiscard]] bool drops_datagram(Seconds t, NodeId from, NodeId to) const;
  // Combined burst-loss probability at `t` (independent windows compose as
  // 1 - prod(1 - p)); 0 outside every burst window.
  [[nodiscard]] double extra_loss_at(Seconds t) const;
  // Summed latency-spike seconds at `t`.
  [[nodiscard]] Seconds extra_latency_at(Seconds t) const;

  // --- Server queries (SimServer::tick / handle_login) ----------------------
  [[nodiscard]] bool region_down_at(Seconds t) const;
  // Smallest active capacity factor at `t`; 1.0 when no flap is active.
  [[nodiscard]] double capacity_factor_at(Seconds t) const;

  // --- Collector queries (HttpCollector) ------------------------------------
  // True while a kCollectorCrash window covers `t`: the collector neither
  // records nor acknowledges, so sensors see a 408 and must retry.
  [[nodiscard]] bool collector_down_at(Seconds t) const;
  // Summed kCollectorSlow delay seconds at `t`; 0 outside every window.
  [[nodiscard]] Seconds collector_delay_at(Seconds t) const;

  // --- Load queries (World, via Testbed) ------------------------------------
  // Largest active kFlashCrowd arrival multiplier at `t`; 1.0 when no surge
  // window is active.
  [[nodiscard]] double flash_crowd_factor_at(Seconds t) const;

  // --- Supervisor queries (core/supervisor.hpp) -----------------------------
  // Shard-process fault windows (kShardCrash + kShardStall) merged in start
  // order. Each fires at most once per run: the supervisor injects the fault
  // when the shard first reaches `start` and never re-arms it after the
  // restart, mirroring a real crash that does not recur on replay.
  [[nodiscard]] std::vector<FaultWindow> shard_faults() const;

  // Windows of the given kind, in start order (used by tests and benches to
  // cross-check recorded coverage gaps against the script).
  [[nodiscard]] std::vector<FaultWindow> windows_of(FaultKind kind) const;

  // --- Named chaos scenarios ------------------------------------------------
  // Deterministic scenario builders over a run of `duration` seconds:
  //   "blackouts"        two 10-minute transport blackouts at 1/3 and 2/3 of the run
  //   "burst-loss"       seeded ~heavy-loss bursts (60-180 s at 60-95 % loss)
  //   "region-flaps"     seeded region crashes (30-120 s down) + capacity flaps
  //   "collector-crash"  two collector outages at 1/4 and 5/8 of the run
  //   "overload"         flash-crowd avatar surge (10x arrivals over the middle
  //                      third) riding a slow collector — the load-spike
  //                      scenario gated by bench/overload_shedding
  //   "chaos"            all the transport/server faults mixed, seeded
  //   "shard-chaos"      chaos + scripted shard crashes (30/55/80 % of the
  //                      run) and one shard stall (45 %) — only meaningful
  //                      under the run supervisor
  // Throws std::invalid_argument for an unknown name. The same (name,
  // duration, seed) triple always yields the same schedule.
  static FaultSchedule scenario(const std::string& name, Seconds duration,
                                std::uint64_t seed);
  static const std::vector<std::string>& scenario_names();

 private:
  std::vector<FaultWindow> windows_;
};

}  // namespace slmob
