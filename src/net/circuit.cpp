#include "net/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "util/bytes.hpp"
#include "util/log.hpp"

namespace slmob {

CircuitEndpoint::CircuitEndpoint(SimNetwork& network, NodeId self, NodeId peer,
                                 CircuitParams params, std::uint32_t initial_seq)
    : network_(network), self_(self), peer_(peer), params_(params) {
  next_seq_ = initial_seq == 0 ? 1 : initial_seq;
  rto_ = params_.initial_rto;
}

void CircuitEndpoint::sample_rtt(Seconds rtt) {
  if (rtt < 0.0) rtt = 0.0;
  if (srtt_ < 0.0) {
    // First sample (RFC 6298 §2.2): SRTT = R, RTTVAR = R/2.
    srtt_ = rtt;
    rttvar_ = rtt / 2.0;
  } else {
    // EWMA with beta = 1/4, alpha = 1/8 (RTTVAR first, per the RFC).
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - rtt);
    srtt_ = 0.875 * srtt_ + 0.125 * rtt;
  }
  // 0.1 s stands in for the clock-granularity term G.
  rto_ = std::clamp(srtt_ + std::max(0.1, 4.0 * rttvar_), params_.min_rto,
                    params_.max_rto);
  ++stats_.rtt_samples;
  last_rtt_sample_at_ = now_;
}

std::span<const std::uint8_t> CircuitEndpoint::build_packet(
    std::uint32_t seq, std::uint8_t flags, std::span<const std::uint8_t> body) {
  ByteWriter& w = packet_scratch_;
  w.clear();
  w.u8(kCircuitVersion);
  w.u32(seq);
  w.u8(flags);
  const std::size_t n_acks = std::min<std::size_t>(acks_to_send_.size(), 255);
  w.u8(static_cast<std::uint8_t>(n_acks));
  for (std::size_t i = 0; i < n_acks; ++i) w.u32(acks_to_send_[i]);
  stats_.acks_sent += n_acks;
  acks_to_send_.erase(acks_to_send_.begin(),
                      acks_to_send_.begin() + static_cast<std::ptrdiff_t>(n_acks));
  w.raw(body);
  return w.bytes();
}

void CircuitEndpoint::transmit(std::span<const std::uint8_t> packet, PacketClass cls) {
  ++stats_.packets_sent;
  network_.send(self_, peer_, packet, cls);
}

void CircuitEndpoint::send(const Message& msg, bool reliable, PacketClass cls) {
  if (failed_) return;
  encode_message_to(msg, body_scratch_);
  send_encoded(body_scratch_.bytes(), reliable, cls);
}

void CircuitEndpoint::send_encoded(std::span<const std::uint8_t> body, bool reliable,
                                   PacketClass cls) {
  if (failed_) return;
  const std::uint32_t seq = next_seq_++;
  const std::uint8_t flags = reliable ? kPacketFlagReliable : 0;
  const auto packet = build_packet(seq, flags, body);
  if (reliable) {
    // Bounded send window: past max_unacked the packet waits its turn
    // (FIFO, so transmissions stay in sequence order even while draining).
    if (unacked_.size() >= params_.max_unacked || !deferred_.empty()) {
      if (deferred_.size() >= params_.max_deferred) {
        // Same loud contract as exhausting retries: the circuit is dead,
        // not silently lossy.
        ++stats_.reliable_failures;
        failed_ = true;
        if (on_failure_) on_failure_();
        return;
      }
      ++stats_.deferred_sends;
      deferred_.push_back({seq, {packet.begin(), packet.end()}});
      return;
    }
    transmit(packet, PacketClass::kControl);
    // Reliable sends keep an owned copy for retransmission (cold path:
    // handshakes and chat, never the per-tick coarse feed).
    unacked_.emplace(seq, Pending{seq, {packet.begin(), packet.end()},
                                  now_ + rto_, params_.max_retries, now_,
                                  /*retransmitted=*/false, rto_});
    return;
  }
  transmit(packet, cls);
}

void CircuitEndpoint::drain_deferred() {
  while (!deferred_.empty() && unacked_.size() < params_.max_unacked && !failed_) {
    Deferred d = std::move(deferred_.front());
    deferred_.pop_front();
    transmit(d.packet, PacketClass::kControl);
    // The retry clock starts at first transmission, not at the (earlier)
    // deferral: a deferred packet gets the full retry budget on the wire.
    unacked_.emplace(d.seq, Pending{d.seq, std::move(d.packet), now_ + rto_,
                                    params_.max_retries, now_,
                                    /*retransmitted=*/false, rto_});
  }
}

void CircuitEndpoint::on_datagram(std::span<const std::uint8_t> bytes) {
  if (failed_) return;
  ++stats_.packets_received;
  try {
    ByteReader r(bytes);
    const std::uint8_t version = r.u8();
    if (version != kCircuitVersion) throw DecodeError("circuit: bad version");
    const std::uint32_t seq = r.u32();
    const std::uint8_t flags = r.u8();
    const std::uint8_t n_acks = r.u8();
    for (std::uint8_t i = 0; i < n_acks; ++i) {
      const std::uint32_t acked = r.u32();
      ++stats_.acks_received;
      const auto it = unacked_.find(acked);
      if (it == unacked_.end()) continue;
      // Karn's rule: only acks of never-retransmitted packets sample the
      // RTT — an ack of a retransmission is ambiguous about which copy it
      // answers.
      if (!it->second.retransmitted) sample_rtt(now_ - it->second.sent_at);
      unacked_.erase(it);
    }
    drain_deferred();  // acks freed window slots
    if (r.at_end()) return;  // pure-ack packet

    const bool reliable = (flags & kPacketFlagReliable) != 0;
    if (reliable) {
      acks_to_send_.push_back(seq);
      if (!seen_reliable_.insert(seq).second) {
        ++stats_.duplicates_dropped;
        flush_acks(true);  // the retransmit means our previous ack was lost
        return;
      }
      // Bound the dedupe window (old seqs can never be retransmitted once
      // the sender runs out of retries).
      if (seen_reliable_.size() > 4096) {
        seen_reliable_.erase(seen_reliable_.begin(),
                             std::next(seen_reliable_.begin(), 2048));
      }
    }
    decode_message_into(r.rest(), inbound_);
    // Ack promptly: a sender on a clean link must never hit its RTO.
    flush_acks(true);
    if (deliver_) deliver_(inbound_);
  } catch (const DecodeError& e) {
    log_warn("circuit", std::string("dropping malformed packet: ") + e.what());
  }
}

void CircuitEndpoint::flush_acks(bool force) {
  if (acks_to_send_.empty()) return;
  if (!force && acks_to_send_.size() < params_.ack_batch) return;
  transmit(build_packet(next_seq_++, 0, {}));
}

void CircuitEndpoint::tick(Seconds now) {
  now_ = now;
  if (failed_) return;
  drain_deferred();
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    Pending& p = it->second;
    if (now >= p.next_retry) {
      if (p.retries_left <= 0) {
        ++stats_.reliable_failures;
        failed_ = true;
        it = unacked_.erase(it);
        if (on_failure_) on_failure_();
        return;
      }
      ++stats_.retransmits;
      transmit(p.packet);
      --p.retries_left;
      p.retransmitted = true;
      // Exponential backoff per packet, capped: consecutive losses space
      // the retries out instead of hammering a dead or blacked-out link.
      if (p.rto < params_.max_rto) {
        p.rto = std::min(p.rto * 2.0, params_.max_rto);
        ++stats_.rto_backoffs;
      }
      p.next_retry = now + p.rto;
    }
    ++it;
  }
  // Don't let acks linger more than a tick.
  flush_acks(true);
}

}  // namespace slmob
