#include "net/messages.hpp"

#include <algorithm>
#include <cmath>

namespace slmob {
namespace {

struct TypeVisitor {
  MessageType operator()(const LoginRequest&) const { return MessageType::kLoginRequest; }
  MessageType operator()(const LoginResponse&) const { return MessageType::kLoginResponse; }
  MessageType operator()(const UseCircuitCode&) const { return MessageType::kUseCircuitCode; }
  MessageType operator()(const RegionHandshake&) const {
    return MessageType::kRegionHandshake;
  }
  MessageType operator()(const CompleteAgentMovement&) const {
    return MessageType::kCompleteAgentMovement;
  }
  MessageType operator()(const AgentUpdate&) const { return MessageType::kAgentUpdate; }
  MessageType operator()(const CoarseLocationUpdate&) const {
    return MessageType::kCoarseLocationUpdate;
  }
  MessageType operator()(const ChatFromViewer&) const { return MessageType::kChatFromViewer; }
  MessageType operator()(const ChatFromSimulator&) const {
    return MessageType::kChatFromSimulator;
  }
  MessageType operator()(const LogoutRequest&) const { return MessageType::kLogoutRequest; }
  MessageType operator()(const KickUser&) const { return MessageType::kKickUser; }
};

void encode_body(ByteWriter& w, const LoginRequest& m) {
  w.str(m.first_name);
  w.str(m.last_name);
  w.u64(m.password_hash);
  w.u32(m.circuit_code);
}

void encode_body(ByteWriter& w, const LoginResponse& m) {
  w.u8(m.ok ? 1 : 0);
  w.u32(m.agent_id);
  w.str(m.region_name);
  w.f32(m.spawn_x);
  w.f32(m.spawn_y);
  w.f32(m.spawn_z);
  w.str(m.error);
}

void encode_body(ByteWriter& w, const UseCircuitCode& m) {
  w.u32(m.circuit_code);
  w.u32(m.agent_id);
}

void encode_body(ByteWriter& w, const RegionHandshake& m) {
  w.str(m.region_name);
  w.f32(m.region_size);
  w.u32(m.capacity);
}

void encode_body(ByteWriter& w, const CompleteAgentMovement& m) { w.u32(m.agent_id); }

void encode_body(ByteWriter& w, const AgentUpdate& m) {
  w.u32(m.agent_id);
  w.f32(m.target_x);
  w.f32(m.target_y);
  w.f32(m.target_z);
  w.f32(m.speed);
  w.u8(m.flags);
}

void encode_body(ByteWriter& w, const CoarseLocationUpdate& m) {
  if (m.entries.size() > 0xffff) throw std::length_error("CoarseLocationUpdate too large");
  w.u16(static_cast<std::uint16_t>(m.entries.size()));
  for (const auto& e : m.entries) {
    w.u32(e.agent_id);
    w.u8(e.x);
    w.u8(e.y);
    w.u8(e.z4);
  }
}

void encode_body(ByteWriter& w, const ChatFromViewer& m) {
  w.u32(m.agent_id);
  w.str(m.message);
  w.u8(m.channel);
}

void encode_body(ByteWriter& w, const ChatFromSimulator& m) {
  w.u32(m.from_agent);
  w.str(m.from_name);
  w.str(m.message);
}

void encode_body(ByteWriter& w, const LogoutRequest& m) { w.u32(m.agent_id); }

void encode_body(ByteWriter& w, const KickUser& m) { w.str(m.reason); }

LoginRequest decode_login_request(ByteReader& r) {
  LoginRequest m;
  m.first_name = r.str();
  m.last_name = r.str();
  m.password_hash = r.u64();
  m.circuit_code = r.u32();
  return m;
}

LoginResponse decode_login_response(ByteReader& r) {
  LoginResponse m;
  m.ok = r.u8() != 0;
  m.agent_id = r.u32();
  m.region_name = r.str();
  m.spawn_x = r.f32();
  m.spawn_y = r.f32();
  m.spawn_z = r.f32();
  m.error = r.str();
  return m;
}

Message decode_rest(ByteReader& r, MessageType type);

}  // namespace

MessageType message_type(const Message& msg) { return std::visit(TypeVisitor{}, msg); }

std::vector<std::uint8_t> encode_message(const Message& msg) {
  ByteWriter w;
  encode_message_to(msg, w);
  return w.take();
}

void encode_message_to(const Message& msg, ByteWriter& w) {
  w.clear();
  w.u8(static_cast<std::uint8_t>(message_type(msg)));
  std::visit([&w](const auto& m) { encode_body(w, m); }, msg);
}

Message decode_message(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const auto type = static_cast<MessageType>(r.u8());
  return decode_rest(r, type);
}

void decode_message_into(std::span<const std::uint8_t> bytes, Message& out) {
  ByteReader r(bytes);
  const auto type = static_cast<MessageType>(r.u8());
  if (type == MessageType::kCoarseLocationUpdate) {
    // The one message received every coarse interval on every circuit:
    // decode it in place so the entries vector's capacity is reused.
    auto* m = std::get_if<CoarseLocationUpdate>(&out);
    if (m == nullptr) {
      out = CoarseLocationUpdate{};
      m = &std::get<CoarseLocationUpdate>(out);
    }
    m->entries.clear();
    const std::uint16_t n = r.u16();
    m->entries.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) {
      CoarseEntry e;
      e.agent_id = r.u32();
      e.x = r.u8();
      e.y = r.u8();
      e.z4 = r.u8();
      m->entries.push_back(e);
    }
    return;
  }
  out = decode_rest(r, type);
}

namespace {

Message decode_rest(ByteReader& r, MessageType type) {
  switch (type) {
    case MessageType::kLoginRequest:
      return decode_login_request(r);
    case MessageType::kLoginResponse:
      return decode_login_response(r);
    case MessageType::kUseCircuitCode: {
      UseCircuitCode m;
      m.circuit_code = r.u32();
      m.agent_id = r.u32();
      return m;
    }
    case MessageType::kRegionHandshake: {
      RegionHandshake m;
      m.region_name = r.str();
      m.region_size = r.f32();
      m.capacity = r.u32();
      return m;
    }
    case MessageType::kCompleteAgentMovement: {
      CompleteAgentMovement m;
      m.agent_id = r.u32();
      return m;
    }
    case MessageType::kAgentUpdate: {
      AgentUpdate m;
      m.agent_id = r.u32();
      m.target_x = r.f32();
      m.target_y = r.f32();
      m.target_z = r.f32();
      m.speed = r.f32();
      m.flags = r.u8();
      return m;
    }
    case MessageType::kCoarseLocationUpdate: {
      CoarseLocationUpdate m;
      const std::uint16_t n = r.u16();
      m.entries.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        CoarseEntry e;
        e.agent_id = r.u32();
        e.x = r.u8();
        e.y = r.u8();
        e.z4 = r.u8();
        m.entries.push_back(e);
      }
      return m;
    }
    case MessageType::kChatFromViewer: {
      ChatFromViewer m;
      m.agent_id = r.u32();
      m.message = r.str();
      m.channel = r.u8();
      return m;
    }
    case MessageType::kChatFromSimulator: {
      ChatFromSimulator m;
      m.from_agent = r.u32();
      m.from_name = r.str();
      m.message = r.str();
      return m;
    }
    case MessageType::kLogoutRequest: {
      LogoutRequest m;
      m.agent_id = r.u32();
      return m;
    }
    case MessageType::kKickUser: {
      KickUser m;
      m.reason = r.str();
      return m;
    }
  }
  throw DecodeError("decode_message: unknown message type");
}

}  // namespace

CoarseEntry quantize_coarse(std::uint32_t agent_id, double x, double y, double z,
                            bool sitting) {
  CoarseEntry e;
  e.agent_id = agent_id;
  if (sitting) return e;  // sitting avatars report the origin
  const auto clamp_u8 = [](double v) {
    return static_cast<std::uint8_t>(std::clamp(std::floor(v), 0.0, 255.0));
  };
  e.x = clamp_u8(x);
  e.y = clamp_u8(y);
  e.z4 = clamp_u8(z / 4.0);
  return e;
}

CoarsePosition dequantize_coarse(const CoarseEntry& entry) {
  return {static_cast<double>(entry.x), static_cast<double>(entry.y),
          static_cast<double>(entry.z4) * 4.0};
}

}  // namespace slmob
