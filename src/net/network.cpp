#include "net/network.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace slmob {

SimNetwork::SimNetwork(NetworkParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params.latency_min < 0.0 || params.latency_max < params.latency_min) {
    throw std::invalid_argument("SimNetwork: bad latency range");
  }
  if (params.loss_rate < 0.0 || params.loss_rate > 1.0) {
    throw std::invalid_argument("SimNetwork: loss_rate must be in [0,1]");
  }
}

NodeId SimNetwork::register_node(ReceiveFn on_receive) {
  handlers_.push_back(std::move(on_receive));
  return static_cast<NodeId>(handlers_.size() - 1);
}

void SimNetwork::set_handler(NodeId node, ReceiveFn on_receive) {
  handlers_.at(node) = std::move(on_receive);
}

void SimNetwork::send(NodeId from, NodeId to, std::vector<std::uint8_t> payload) {
  ++stats_.sent;
  if (to >= handlers_.size()) {
    throw std::invalid_argument("SimNetwork::send: unknown destination node");
  }
  if (payload.size() > params_.mtu) {
    ++stats_.oversize_dropped;
    log_warn("net", "dropping oversize datagram");
    return;
  }
  Seconds fault_latency = 0.0;
  if (!faults_.empty()) {
    if (faults_.drops_datagram(clock_, from, to)) {
      ++stats_.fault_dropped;
      return;
    }
    const double burst = faults_.extra_loss_at(clock_);
    if (burst > 0.0 && rng_.bernoulli(burst)) {
      ++stats_.lost;
      ++stats_.fault_dropped;
      return;
    }
    fault_latency = faults_.extra_latency_at(clock_);
  }
  if (rng_.bernoulli(params_.loss_rate)) {
    ++stats_.lost;
    return;
  }
  const Seconds latency =
      rng_.uniform(params_.latency_min, params_.latency_max) + fault_latency;
  in_flight_.push({clock_ + latency, order_++, from, to, std::move(payload)});
}

void SimNetwork::tick(Seconds now, Seconds dt) {
  clock_ = now + dt;
  while (!in_flight_.empty() && in_flight_.top().arrival <= clock_) {
    // priority_queue::top is const; copy-out is fine (packets are small).
    InFlight pkt = in_flight_.top();
    in_flight_.pop();
    ++stats_.delivered;
    auto& handler = handlers_.at(pkt.to);
    if (handler) handler(pkt.from, pkt.payload);
  }
}

}  // namespace slmob
