#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace slmob {

SimNetwork::SimNetwork(NetworkParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params.latency_min < 0.0 || params.latency_max < params.latency_min) {
    throw std::invalid_argument("SimNetwork: bad latency range");
  }
  if (params.loss_rate < 0.0 || params.loss_rate > 1.0) {
    throw std::invalid_argument("SimNetwork: loss_rate must be in [0,1]");
  }
}

NodeId SimNetwork::register_node(ReceiveFn on_receive) {
  handlers_.push_back(std::move(on_receive));
  return static_cast<NodeId>(handlers_.size() - 1);
}

void SimNetwork::set_handler(NodeId node, ReceiveFn on_receive) {
  handlers_.at(node) = std::move(on_receive);
}

bool SimNetwork::admit(NodeId from, NodeId to, std::size_t payload_size, PacketClass cls,
                       Seconds& latency) {
  ++stats_.sent;
  if (to >= handlers_.size()) {
    throw std::invalid_argument("SimNetwork::send: unknown destination node");
  }
  if (payload_size > params_.mtu) {
    ++stats_.oversize_dropped;
    log_warn("net", "dropping oversize datagram");
    return false;
  }
  // Bounded in-flight queue: non-control traffic past the cap is shed by
  // class. The check draws no RNG, so an uncongested run's draw sequence is
  // untouched; control is always admitted (the cap is a data-plane budget).
  if (in_flight_.size() >= params_.max_in_flight && cls != PacketClass::kControl) {
    if (cls == PacketClass::kSnapshot) {
      ++stats_.shed_snapshot;
    } else {
      ++stats_.shed_session;
    }
    return false;
  }
  Seconds fault_latency = 0.0;
  if (!faults_.empty()) {
    if (faults_.drops_datagram(clock_, from, to)) {
      ++stats_.fault_dropped;
      return false;
    }
    const double burst = faults_.extra_loss_at(clock_);
    if (burst > 0.0 && rng_.bernoulli(burst)) {
      ++stats_.lost;
      ++stats_.fault_dropped;
      return false;
    }
    fault_latency = faults_.extra_latency_at(clock_);
  }
  if (rng_.bernoulli(params_.loss_rate)) {
    ++stats_.lost;
    return false;
  }
  latency = rng_.uniform(params_.latency_min, params_.latency_max) + fault_latency;
  return true;
}

void SimNetwork::enqueue(NodeId from, NodeId to, Seconds latency,
                         std::vector<std::uint8_t> payload) {
  in_flight_.push_back({clock_ + latency, order_++, from, to, std::move(payload)});
  std::push_heap(in_flight_.begin(), in_flight_.end(), std::greater<>{});
  stats_.in_flight_peak = std::max<std::uint64_t>(stats_.in_flight_peak, in_flight_.size());
}

std::vector<std::uint8_t> SimNetwork::acquire_buffer() {
  if (buffer_pool_.empty()) return {};
  std::vector<std::uint8_t> buf = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  return buf;
}

void SimNetwork::release_buffer(std::vector<std::uint8_t> buf) {
  if (buffer_pool_.size() >= 256) return;  // bound pooled memory
  buf.clear();
  buffer_pool_.push_back(std::move(buf));
}

void SimNetwork::send(NodeId from, NodeId to, std::vector<std::uint8_t> payload,
                      PacketClass cls) {
  Seconds latency = 0.0;
  if (!admit(from, to, payload.size(), cls, latency)) return;
  enqueue(from, to, latency, std::move(payload));
}

void SimNetwork::send(NodeId from, NodeId to, std::span<const std::uint8_t> payload,
                      PacketClass cls) {
  Seconds latency = 0.0;
  if (!admit(from, to, payload.size(), cls, latency)) return;
  std::vector<std::uint8_t> buf = acquire_buffer();
  buf.assign(payload.begin(), payload.end());
  enqueue(from, to, latency, std::move(buf));
}

void SimNetwork::tick(Seconds now, Seconds dt) {
  clock_ = now + dt;
  while (!in_flight_.empty() && in_flight_.front().arrival <= clock_) {
    std::pop_heap(in_flight_.begin(), in_flight_.end(), std::greater<>{});
    InFlight pkt = std::move(in_flight_.back());
    in_flight_.pop_back();
    ++stats_.delivered;
    auto& handler = handlers_.at(pkt.to);
    if (handler) handler(pkt.from, pkt.payload);
    release_buffer(std::move(pkt.payload));
  }
}

}  // namespace slmob
