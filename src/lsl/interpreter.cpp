#include "lsl/interpreter.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <optional>

#include "lsl/parser.hpp"

namespace slmob::lsl {
namespace {

Value make_int(std::int64_t v) { return Value(v); }
Value make_float(double v) { return Value(v); }

// Numeric binary op with LSL promotion (int op int stays int).
Value numeric_binop(const std::string& op, const Value& a, const Value& b, int line) {
  const auto err = [&](const char* what) { return LslError(what, line, 0); };
  if (a.is_int() && b.is_int()) {
    const std::int64_t x = a.as_int();
    const std::int64_t y = b.as_int();
    if (op == "+") return make_int(x + y);
    if (op == "-") return make_int(x - y);
    if (op == "*") return make_int(x * y);
    if (op == "/") {
      if (y == 0) throw err("integer division by zero");
      return make_int(x / y);
    }
    if (op == "%") {
      if (y == 0) throw err("integer modulo by zero");
      return make_int(x % y);
    }
  } else {
    const double x = a.as_float();
    const double y = b.as_float();
    if (op == "+") return make_float(x + y);
    if (op == "-") return make_float(x - y);
    if (op == "*") return make_float(x * y);
    if (op == "/") {
      if (y == 0.0) throw err("division by zero");
      return make_float(x / y);
    }
    if (op == "%") throw err("'%' requires integer operands");
  }
  throw err("unsupported numeric operator");
}

}  // namespace

Interpreter::Interpreter(std::string_view source, LslHost& host)
    : Interpreter(parse(source), host) {}

Interpreter::Interpreter(Script script, LslHost& host)
    : script_(std::move(script)), host_(host) {
  // Predefined constants (subset of the LSL constant table).
  globals_["TRUE"] = make_int(1);
  globals_["FALSE"] = make_int(0);
  globals_["PI"] = make_float(3.141592653589793);
  globals_["TWO_PI"] = make_float(6.283185307179586);
  globals_["PI_BY_TWO"] = make_float(1.5707963267948966);
  globals_["DEG_TO_RAD"] = make_float(0.017453292519943295);
  globals_["RAD_TO_DEG"] = make_float(57.29577951308232);
  globals_["AGENT"] = make_int(1);
  globals_["ACTIVE"] = make_int(2);
  globals_["PASSIVE"] = make_int(4);
  globals_["NULL_KEY"] = Value(std::string("00000000-0000-0000-0000-000000000000"));
  globals_["ZERO_VECTOR"] = Value(Vec3{});
  globals_["EOF"] = Value(std::string("\n\n\n"));
  globals_["STRING_TRIM_HEAD"] = make_int(1);
  globals_["STRING_TRIM_TAIL"] = make_int(2);
  globals_["STRING_TRIM"] = make_int(3);

  for (const auto& g : script_.globals) {
    globals_[g.name] = Value::default_for(g.type);
  }
}

void Interpreter::start() {
  if (started_) return;
  started_ = true;
  // Evaluate global initialisers (constants are visible to them).
  locals_.clear();
  locals_.push_back({});
  ops_this_event_ = 0;
  for (const auto& g : script_.globals) {
    if (g.init) globals_[g.name] = eval(*g.init);
  }
  locals_.clear();
  current_state_ = "default";
  fire_event("state_entry", {});
}

const StateDef& Interpreter::state_by_name(const std::string& name) const {
  for (const auto& s : script_.states) {
    if (s.name == name) return s;
  }
  throw LslError("unknown state '" + name + "'", 0, 0);
}

bool Interpreter::has_handler(const std::string& event) const {
  const StateDef& state = state_by_name(current_state_);
  return std::any_of(state.handlers.begin(), state.handlers.end(),
                     [&](const EventHandler& h) { return h.name == event; });
}

const Value* Interpreter::global(const std::string& name) const {
  const auto it = globals_.find(name);
  return it == globals_.end() ? nullptr : &it->second;
}

void Interpreter::fire_event(const std::string& name, const std::vector<Value>& args) {
  const StateDef& state = state_by_name(current_state_);
  const EventHandler* handler = nullptr;
  for (const auto& h : state.handlers) {
    if (h.name == name) {
      handler = &h;
      break;
    }
  }
  if (handler == nullptr) return;
  if (args.size() != handler->params.size()) {
    throw LslError("event '" + name + "' argument count mismatch", 0, 0);
  }

  ops_this_event_ = 0;
  locals_.clear();
  locals_.push_back({});
  for (std::size_t i = 0; i < args.size(); ++i) {
    locals_.back().vars[handler->params[i].second] = args[i];
  }
  pending_state_.clear();
  const Flow flow = exec_block(handler->body);
  locals_.clear();
  if (flow == Flow::kStateChange ||
      (!pending_state_.empty() && pending_state_ != current_state_)) {
    const std::string target = pending_state_;
    pending_state_.clear();
    if (!target.empty() && target != current_state_) {
      current_state_ = target;
      fire_event("state_entry", {});
    }
  }
}

void Interpreter::fire_timer() { fire_event("timer", {}); }

void Interpreter::fire_sensor(std::int64_t detected) {
  fire_event("sensor", {make_int(detected)});
}

void Interpreter::fire_no_sensor() { fire_event("no_sensor", {}); }

void Interpreter::fire_http_response(const std::string& request_key, std::int64_t status,
                                     const std::string& body) {
  fire_event("http_response",
             {Value(request_key), make_int(status), Value(List{}), Value(body)});
}

void Interpreter::charge(int line) {
  ++total_ops_;
  if (++ops_this_event_ > budget_per_event_) {
    throw LslError("instruction budget exceeded (runaway script?)", line, 0);
  }
}

Interpreter::Flow Interpreter::exec_block(const std::vector<StmtPtr>& stmts) {
  for (const auto& stmt : stmts) {
    const Flow flow = exec_stmt(*stmt);
    if (flow != Flow::kNormal) return flow;
  }
  return Flow::kNormal;
}

Interpreter::Flow Interpreter::exec_stmt(const Stmt& stmt) {
  charge(stmt.line);
  switch (stmt.kind) {
    case StmtKind::kExpr:
      eval(*stmt.expr);
      return Flow::kNormal;
    case StmtKind::kDecl: {
      Value init = stmt.init ? eval(*stmt.init) : Value::default_for(stmt.decl_type);
      // Implicit int->float on float declarations.
      if (stmt.decl_type == LslType::kFloat && init.is_int()) {
        init = make_float(init.as_float());
      }
      locals_.back().vars[stmt.name] = std::move(init);
      return Flow::kNormal;
    }
    case StmtKind::kIf: {
      locals_.push_back({});
      Flow flow = Flow::kNormal;
      if (eval(*stmt.expr).truthy()) {
        flow = exec_block(stmt.body);
      } else if (!stmt.else_body.empty()) {
        flow = exec_block(stmt.else_body);
      }
      locals_.pop_back();
      return flow;
    }
    case StmtKind::kWhile: {
      while (eval(*stmt.expr).truthy()) {
        charge(stmt.line);
        locals_.push_back({});
        const Flow flow = exec_block(stmt.body);
        locals_.pop_back();
        if (flow != Flow::kNormal) return flow;
      }
      return Flow::kNormal;
    }
    case StmtKind::kFor: {
      locals_.push_back({});
      if (stmt.for_init) eval(*stmt.for_init);
      while (!stmt.for_cond || eval(*stmt.for_cond).truthy()) {
        charge(stmt.line);
        locals_.push_back({});
        const Flow flow = exec_block(stmt.body);
        locals_.pop_back();
        if (flow != Flow::kNormal) {
          locals_.pop_back();
          return flow;
        }
        if (stmt.for_step) eval(*stmt.for_step);
      }
      locals_.pop_back();
      return Flow::kNormal;
    }
    case StmtKind::kReturn:
      return_value_ = stmt.expr ? eval(*stmt.expr) : Value();
      return Flow::kReturn;
    case StmtKind::kBlock: {
      locals_.push_back({});
      const Flow flow = exec_block(stmt.body);
      locals_.pop_back();
      return flow;
    }
    case StmtKind::kStateChange:
      pending_state_ = stmt.name;
      return Flow::kStateChange;
  }
  return Flow::kNormal;
}

Value* Interpreter::find_var(const std::string& name) {
  for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
    const auto found = it->vars.find(name);
    if (found != it->vars.end()) return &found->second;
  }
  const auto g = globals_.find(name);
  return g == globals_.end() ? nullptr : &g->second;
}

Value Interpreter::eval(const Expr& expr) {
  charge(expr.line);
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      return make_int(expr.int_value);
    case ExprKind::kFloatLiteral:
      return make_float(expr.float_value);
    case ExprKind::kStringLiteral:
      return Value(expr.string_value);
    case ExprKind::kVectorLiteral: {
      const double x = eval(*expr.children[0]).as_float();
      const double y = eval(*expr.children[1]).as_float();
      const double z = eval(*expr.children[2]).as_float();
      return Value(Vec3{x, y, z});
    }
    case ExprKind::kListLiteral: {
      List list;
      list.reserve(expr.children.size());
      for (const auto& child : expr.children) list.push_back(eval(*child));
      return Value(std::move(list));
    }
    case ExprKind::kVariable: {
      const Value* v = find_var(expr.name);
      if (v == nullptr) {
        throw LslError("undefined variable '" + expr.name + "'", expr.line, 0);
      }
      return *v;
    }
    case ExprKind::kMember: {
      const Value base = eval(*expr.children[0]);
      const Vec3& v = base.as_vector();
      switch (expr.member) {
        case 'x':
          return make_float(v.x);
        case 'y':
          return make_float(v.y);
        default:
          return make_float(v.z);
      }
    }
    case ExprKind::kUnary: {
      Value v = eval(*expr.children[0]);
      if (expr.op == "!") return make_int(v.truthy() ? 0 : 1);
      if (v.is_int()) return make_int(-v.as_int());
      if (v.is_float()) return make_float(-v.as_float());
      if (v.is_vector()) return Value(v.as_vector() * -1.0);
      throw LslError("cannot negate this type", expr.line, 0);
    }
    case ExprKind::kIncrement: {
      Value* v = find_var(expr.name);
      if (v == nullptr) throw LslError("undefined variable '" + expr.name + "'", expr.line, 0);
      const Value before = *v;
      const std::int64_t delta = expr.op == "++" ? 1 : -1;
      if (v->is_int()) {
        *v = make_int(v->as_int() + delta);
      } else if (v->is_float()) {
        *v = make_float(v->as_float() + static_cast<double>(delta));
      } else {
        throw LslError("++/-- require a numeric variable", expr.line, 0);
      }
      return expr.is_prefix ? *v : before;
    }
    case ExprKind::kBinary: {
      // Short-circuit logicals first.
      if (expr.op == "&&") {
        return make_int(eval(*expr.children[0]).truthy() &&
                                eval(*expr.children[1]).truthy()
                            ? 1
                            : 0);
      }
      if (expr.op == "||") {
        return make_int(eval(*expr.children[0]).truthy() ||
                                eval(*expr.children[1]).truthy()
                            ? 1
                            : 0);
      }
      const Value a = eval(*expr.children[0]);
      const Value b = eval(*expr.children[1]);
      // String concatenation (lenient: either side string).
      if (expr.op == "+" && (a.is_string() || b.is_string())) {
        return Value(a.to_string() + b.to_string());
      }
      // List append/concat.
      if (expr.op == "+" && a.is_list()) {
        List out = a.as_list();
        if (b.is_list()) {
          const List& other = b.as_list();
          out.insert(out.end(), other.begin(), other.end());
        } else {
          out.push_back(b);
        }
        return Value(std::move(out));
      }
      // Vector algebra.
      if (a.is_vector() && b.is_vector()) {
        if (expr.op == "+") return Value(a.as_vector() + b.as_vector());
        if (expr.op == "-") return Value(a.as_vector() - b.as_vector());
        if (expr.op == "*") {  // dot product, as in LSL
          const Vec3& u = a.as_vector();
          const Vec3& w = b.as_vector();
          return make_float(u.x * w.x + u.y * w.y + u.z * w.z);
        }
        if (expr.op == "==") return make_int(a.as_vector() == b.as_vector() ? 1 : 0);
        if (expr.op == "!=") return make_int(a.as_vector() == b.as_vector() ? 0 : 1);
        throw LslError("unsupported vector operator '" + expr.op + "'", expr.line, 0);
      }
      if (a.is_vector() && (b.is_int() || b.is_float())) {
        if (expr.op == "*") return Value(a.as_vector() * b.as_float());
        if (expr.op == "/") return Value(a.as_vector() / b.as_float());
        throw LslError("unsupported vector-scalar operator", expr.line, 0);
      }
      // String comparisons.
      if (a.is_string() && b.is_string()) {
        const int cmp = a.as_string().compare(b.as_string());
        if (expr.op == "==") return make_int(cmp == 0 ? 1 : 0);
        if (expr.op == "!=") return make_int(cmp != 0 ? 1 : 0);
        if (expr.op == "<") return make_int(cmp < 0 ? 1 : 0);
        if (expr.op == ">") return make_int(cmp > 0 ? 1 : 0);
        if (expr.op == "<=") return make_int(cmp <= 0 ? 1 : 0);
        if (expr.op == ">=") return make_int(cmp >= 0 ? 1 : 0);
        throw LslError("unsupported string operator '" + expr.op + "'", expr.line, 0);
      }
      // Numeric comparisons.
      if (expr.op == "==" || expr.op == "!=" || expr.op == "<" || expr.op == ">" ||
          expr.op == "<=" || expr.op == ">=") {
        const double x = a.as_float();
        const double y = b.as_float();
        bool result = false;
        if (expr.op == "==") result = x == y;
        if (expr.op == "!=") result = x != y;
        if (expr.op == "<") result = x < y;
        if (expr.op == ">") result = x > y;
        if (expr.op == "<=") result = x <= y;
        if (expr.op == ">=") result = x >= y;
        return make_int(result ? 1 : 0);
      }
      return numeric_binop(expr.op, a, b, expr.line);
    }
    case ExprKind::kAssign: {
      Value rhs = eval(*expr.children[0]);
      Value* target = find_var(expr.name);
      if (target == nullptr) {
        throw LslError("assignment to undefined variable '" + expr.name + "'", expr.line, 0);
      }
      if (expr.target_is_member) {
        if (!target->is_vector()) {
          throw LslError("member assignment on non-vector", expr.line, 0);
        }
        Vec3 v = target->as_vector();
        double* slot = expr.member == 'x' ? &v.x : expr.member == 'y' ? &v.y : &v.z;
        if (expr.op == "=") {
          *slot = rhs.as_float();
        } else if (expr.op == "+=") {
          *slot += rhs.as_float();
        } else {
          *slot -= rhs.as_float();
        }
        *target = Value(v);
        return *target;
      }
      if (expr.op == "=") {
        // Preserve float-ness of the target when assigning ints to floats.
        if (target->is_float() && rhs.is_int()) rhs = make_float(rhs.as_float());
        *target = std::move(rhs);
      } else {
        const std::string base_op = expr.op == "+=" ? "+" : "-";
        if (target->is_string() || rhs.is_string()) {
          if (base_op != "+") throw LslError("strings only support +=", expr.line, 0);
          *target = Value(target->to_string() + rhs.to_string());
        } else if (target->is_vector()) {
          *target = base_op == "+" ? Value(target->as_vector() + rhs.as_vector())
                                   : Value(target->as_vector() - rhs.as_vector());
        } else if (target->is_list()) {
          if (base_op != "+") throw LslError("lists only support +=", expr.line, 0);
          List out = target->as_list();
          if (rhs.is_list()) {
            const List& other = rhs.as_list();
            out.insert(out.end(), other.begin(), other.end());
          } else {
            out.push_back(rhs);
          }
          *target = Value(std::move(out));
        } else {
          *target = numeric_binop(base_op, *target, rhs, expr.line);
        }
      }
      return *target;
    }
    case ExprKind::kCast: {
      const Value v = eval(*expr.children[0]);
      switch (expr.cast_type) {
        case LslType::kInteger:
          if (v.is_string()) {
            try {
              return make_int(std::stoll(v.as_string()));
            } catch (...) {
              return make_int(0);
            }
          }
          return make_int(v.as_int());
        case LslType::kFloat:
          if (v.is_string()) {
            try {
              return make_float(std::stod(v.as_string()));
            } catch (...) {
              return make_float(0.0);
            }
          }
          return make_float(v.as_float());
        case LslType::kString:
        case LslType::kKey:
          return Value(v.to_string());
        case LslType::kList:
          if (v.is_list()) return v;
          return Value(List{v});
        case LslType::kVector:
          if (v.is_vector()) return v;
          throw LslError("cannot cast to vector", expr.line, 0);
        case LslType::kVoid:
          break;
      }
      throw LslError("unsupported cast", expr.line, 0);
    }
    case ExprKind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const auto& child : expr.children) args.push_back(eval(*child));
      return call_function(expr.name, std::move(args), expr.line);
    }
  }
  throw LslError("unreachable expression kind", expr.line, 0);
}

Value Interpreter::call_function(const std::string& name, std::vector<Value> args,
                                 int line) {
  bool handled = false;
  Value builtin_result = call_builtin(name, args, line, handled);
  if (handled) return builtin_result;

  for (const auto& fn : script_.functions) {
    if (fn.name != name) continue;
    if (fn.params.size() != args.size()) {
      throw LslError("function '" + name + "' argument count mismatch", line, 0);
    }
    if (++call_depth_ > 64) {
      --call_depth_;
      throw LslError("call depth exceeded", line, 0);
    }
    // Fresh scope stack for the callee (no access to caller locals).
    std::vector<Scope> saved = std::move(locals_);
    locals_.clear();
    locals_.push_back({});
    for (std::size_t i = 0; i < args.size(); ++i) {
      locals_.back().vars[fn.params[i].second] = std::move(args[i]);
    }
    return_value_ = Value();
    exec_block(fn.body);
    Value result = std::move(return_value_);
    locals_ = std::move(saved);
    --call_depth_;
    if (fn.return_type == LslType::kFloat && result.is_int()) {
      result = make_float(result.as_float());
    }
    return result;
  }
  throw LslError("unknown function '" + name + "'", line, 0);
}

Value Interpreter::call_builtin(const std::string& name, std::vector<Value>& args,
                                int line, bool& handled) {
  handled = true;
  const auto need = [&](std::size_t n) {
    if (args.size() != n) {
      throw LslError("builtin '" + name + "' expects " + std::to_string(n) + " args", line,
                     0);
    }
  };

  // --- world-facing builtins (host) ---------------------------------------
  if (name == "llSay") {
    need(2);
    host_.ll_say(args[0].as_int(), args[1].to_string());
    return Value();
  }
  if (name == "llOwnerSay") {
    need(1);
    host_.ll_owner_say(args[0].to_string());
    return Value();
  }
  if (name == "llSetTimerEvent") {
    need(1);
    host_.ll_set_timer_event(args[0].as_float());
    return Value();
  }
  if (name == "llSensorRepeat") {
    need(6);
    host_.ll_sensor_repeat(args[0].to_string(), args[1].to_string(), args[2].as_int(),
                           args[3].as_float(), args[4].as_float(), args[5].as_float());
    return Value();
  }
  if (name == "llGetPos") {
    need(0);
    return Value(host_.ll_get_pos());
  }
  if (name == "llGetKey") {
    need(0);
    return Value(host_.ll_get_key());
  }
  if (name == "llGetTime") {
    need(0);
    return make_float(host_.ll_get_time());
  }
  if (name == "llGetUnixTime") {
    need(0);
    return make_int(host_.ll_get_unix_time());
  }
  if (name == "llFrand") {
    need(1);
    return make_float(host_.ll_frand(args[0].as_float()));
  }
  if (name == "llHTTPRequest") {
    need(3);
    return Value(host_.ll_http_request(args[0].to_string(), args[1].as_list(),
                                       args[2].to_string()));
  }
  if (name == "llGetFreeMemory") {
    need(0);
    return make_int(host_.ll_get_free_memory());
  }
  if (name == "llDetectedPos") {
    need(1);
    const auto i = static_cast<std::size_t>(args[0].as_int());
    if (i >= host_.detected_count()) throw LslError("llDetectedPos: index out of range", line, 0);
    return Value(host_.detected_pos(i));
  }
  if (name == "llDetectedKey") {
    need(1);
    const auto i = static_cast<std::size_t>(args[0].as_int());
    if (i >= host_.detected_count()) throw LslError("llDetectedKey: index out of range", line, 0);
    return Value(host_.detected_key(i));
  }
  if (name == "llDetectedName") {
    need(1);
    const auto i = static_cast<std::size_t>(args[0].as_int());
    if (i >= host_.detected_count()) throw LslError("llDetectedName: index out of range", line, 0);
    return Value(host_.detected_name(i));
  }

  // --- pure builtins -------------------------------------------------------
  if (name == "llFloor") {
    need(1);
    return make_int(static_cast<std::int64_t>(std::floor(args[0].as_float())));
  }
  if (name == "llCeil") {
    need(1);
    return make_int(static_cast<std::int64_t>(std::ceil(args[0].as_float())));
  }
  if (name == "llRound") {
    need(1);
    return make_int(static_cast<std::int64_t>(std::llround(args[0].as_float())));
  }
  if (name == "llAbs") {
    need(1);
    return make_int(std::abs(args[0].as_int()));
  }
  if (name == "llFabs") {
    need(1);
    return make_float(std::fabs(args[0].as_float()));
  }
  if (name == "llSqrt") {
    need(1);
    return make_float(std::sqrt(args[0].as_float()));
  }
  if (name == "llPow") {
    need(2);
    return make_float(std::pow(args[0].as_float(), args[1].as_float()));
  }
  if (name == "llVecMag") {
    need(1);
    return make_float(args[0].as_vector().norm());
  }
  if (name == "llVecDist") {
    need(2);
    return make_float(args[0].as_vector().distance_to(args[1].as_vector()));
  }
  if (name == "llStringLength") {
    need(1);
    return make_int(static_cast<std::int64_t>(args[0].as_string().size()));
  }
  if (name == "llGetSubString") {
    need(3);
    const std::string& s = args[0].as_string();
    auto start = args[1].as_int();
    auto end = args[2].as_int();
    const auto n = static_cast<std::int64_t>(s.size());
    if (start < 0) start += n;
    if (end < 0) end += n;
    start = std::clamp<std::int64_t>(start, 0, n);
    end = std::clamp<std::int64_t>(end, -1, n - 1);
    if (end < start) return Value(std::string{});
    return Value(s.substr(static_cast<std::size_t>(start),
                          static_cast<std::size_t>(end - start + 1)));
  }
  if (name == "llSubStringIndex") {
    need(2);
    const auto pos = args[0].as_string().find(args[1].as_string());
    return make_int(pos == std::string::npos ? -1 : static_cast<std::int64_t>(pos));
  }
  if (name == "llGetListLength") {
    need(1);
    return make_int(static_cast<std::int64_t>(args[0].as_list().size()));
  }
  if (name == "llList2String") {
    need(2);
    const List& list = args[0].as_list();
    auto i = args[1].as_int();
    if (i < 0) i += static_cast<std::int64_t>(list.size());
    if (i < 0 || i >= static_cast<std::int64_t>(list.size())) return Value(std::string{});
    return Value(list[static_cast<std::size_t>(i)].to_string());
  }
  if (name == "llDumpList2String") {
    need(2);
    const List& list = args[0].as_list();
    const std::string& sep = args[1].as_string();
    std::string out;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i > 0) out += sep;
      out += list[i].to_string();
    }
    return Value(std::move(out));
  }
  if (name == "llList2Integer") {
    need(2);
    const List& list = args[0].as_list();
    auto i = args[1].as_int();
    if (i < 0) i += static_cast<std::int64_t>(list.size());
    if (i < 0 || i >= static_cast<std::int64_t>(list.size())) return make_int(0);
    const Value& v = list[static_cast<std::size_t>(i)];
    if (v.is_int() || v.is_float()) return make_int(v.as_int());
    if (v.is_string()) {
      try {
        return make_int(std::stoll(v.as_string()));
      } catch (...) {
        return make_int(0);
      }
    }
    return make_int(0);
  }
  if (name == "llList2Float") {
    need(2);
    const List& list = args[0].as_list();
    auto i = args[1].as_int();
    if (i < 0) i += static_cast<std::int64_t>(list.size());
    if (i < 0 || i >= static_cast<std::int64_t>(list.size())) return make_float(0.0);
    const Value& v = list[static_cast<std::size_t>(i)];
    if (v.is_int() || v.is_float()) return make_float(v.as_float());
    if (v.is_string()) {
      try {
        return make_float(std::stod(v.as_string()));
      } catch (...) {
        return make_float(0.0);
      }
    }
    return make_float(0.0);
  }
  if (name == "llListSort") {
    need(3);
    List list = args[0].as_list();
    const auto stride = std::max<std::int64_t>(args[1].as_int(), 1);
    const bool ascending = args[2].as_int() != 0;
    if (list.size() % static_cast<std::size_t>(stride) != 0) return Value(std::move(list));
    // Sort stride-sized blocks by their first element (numeric or string).
    std::vector<List> blocks;
    for (std::size_t i = 0; i < list.size(); i += static_cast<std::size_t>(stride)) {
      blocks.emplace_back(list.begin() + static_cast<std::ptrdiff_t>(i),
                          list.begin() + static_cast<std::ptrdiff_t>(i + static_cast<std::size_t>(stride)));
    }
    std::stable_sort(blocks.begin(), blocks.end(), [&](const List& a, const List& b) {
      const Value& x = a.front();
      const Value& y = b.front();
      bool less = false;
      if (x.is_string() && y.is_string()) {
        less = x.as_string() < y.as_string();
      } else {
        less = x.as_float() < y.as_float();
      }
      return ascending ? less : !less;
    });
    List out;
    for (auto& block : blocks) {
      for (auto& v : block) out.push_back(std::move(v));
    }
    return Value(std::move(out));
  }
  if (name == "llListFindList") {
    need(2);
    const List& haystack = args[0].as_list();
    const List& needle = args[1].as_list();
    if (needle.empty()) return make_int(0);
    if (needle.size() > haystack.size()) return make_int(-1);
    for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
      bool match = true;
      for (std::size_t j = 0; j < needle.size(); ++j) {
        if (haystack[i + j].to_string() != needle[j].to_string()) {
          match = false;
          break;
        }
      }
      if (match) return make_int(static_cast<std::int64_t>(i));
    }
    return make_int(-1);
  }
  if (name == "llParseString2List") {
    need(3);
    const std::string& src = args[0].as_string();
    const List& separators = args[1].as_list();
    // Spacers (arg 2) are kept as their own tokens.
    const List& spacers = args[2].as_list();
    List out;
    std::string current;
    std::size_t i = 0;
    const auto match_at = [&](const List& tokens) -> std::optional<std::string> {
      for (const auto& t : tokens) {
        const std::string text = t.to_string();
        if (!text.empty() && src.compare(i, text.size(), text) == 0) return text;
      }
      return std::nullopt;
    };
    while (i < src.size()) {
      if (const auto sep = match_at(separators)) {
        if (!current.empty()) out.push_back(Value(std::move(current)));
        current.clear();
        i += sep->size();
      } else if (const auto spacer = match_at(spacers)) {
        if (!current.empty()) out.push_back(Value(std::move(current)));
        current.clear();
        out.push_back(Value(*spacer));
        i += spacer->size();
      } else {
        current.push_back(src[i++]);
      }
    }
    if (!current.empty()) out.push_back(Value(std::move(current)));
    return Value(std::move(out));
  }
  if (name == "llCSV2List") {
    need(1);
    const std::string& src = args[0].as_string();
    List out;
    std::string current;
    for (const char c : src) {
      if (c == ',') {
        out.push_back(Value(current));
        current.clear();
        // LSL skips one space after a comma.
      } else if (c == ' ' && !out.empty() && current.empty()) {
        continue;
      } else {
        current.push_back(c);
      }
    }
    out.push_back(Value(std::move(current)));
    return Value(std::move(out));
  }
  if (name == "llList2CSV") {
    need(1);
    const List& list = args[0].as_list();
    std::string out;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i > 0) out += ", ";
      out += list[i].to_string();
    }
    return Value(std::move(out));
  }
  if (name == "llToUpper" || name == "llToLower") {
    need(1);
    std::string s = args[0].as_string();
    for (char& c : s) {
      c = name == "llToUpper" ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                              : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return Value(std::move(s));
  }
  if (name == "llStringTrim") {
    need(2);
    std::string s = args[0].as_string();
    const auto type = args[1].as_int();  // 1 head, 2 tail, 3 both
    if ((type & 1) != 0) {
      const auto begin = s.find_first_not_of(" \t\n\r");
      s.erase(0, begin == std::string::npos ? s.size() : begin);
    }
    if ((type & 2) != 0) {
      const auto end = s.find_last_not_of(" \t\n\r");
      s.erase(end == std::string::npos ? 0 : end + 1);
    }
    return Value(std::move(s));
  }
  if (name == "llInsertString") {
    need(3);
    std::string dst = args[0].as_string();
    const auto pos = std::clamp<std::int64_t>(args[1].as_int(), 0,
                                              static_cast<std::int64_t>(dst.size()));
    dst.insert(static_cast<std::size_t>(pos), args[2].as_string());
    return Value(std::move(dst));
  }
  if (name == "llDeleteSubString") {
    need(3);
    const std::string& s = args[0].as_string();
    const auto n = static_cast<std::int64_t>(s.size());
    auto start = args[1].as_int();
    auto end = args[2].as_int();
    if (start < 0) start += n;
    if (end < 0) end += n;
    start = std::clamp<std::int64_t>(start, 0, n);
    end = std::clamp<std::int64_t>(end, -1, n - 1);
    if (end < start) return Value(s);
    return Value(s.substr(0, static_cast<std::size_t>(start)) +
                 s.substr(static_cast<std::size_t>(end + 1)));
  }

  handled = false;
  return Value();
}

}  // namespace slmob::lsl
