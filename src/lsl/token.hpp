// Token definitions for the LSL (Linden Scripting Language) subset.
//
// The paper's first monitoring architecture programs in-world sensor
// objects "using a proprietary scripting language" (LSL). slmob embeds a
// compact LSL interpreter so sensor behaviour is expressed in the same
// language the authors used, limits and all.
#pragma once

#include <string>

namespace slmob::lsl {

enum class TokenType {
  kEof,
  kIdentifier,
  kIntegerLiteral,
  kFloatLiteral,
  kStringLiteral,
  // keywords
  kInteger,
  kFloat,
  kString,
  kVector,
  kList,
  kKey,
  kDefault,
  kState,
  kIf,
  kElse,
  kWhile,
  kFor,
  kReturn,
  kJump,   // parsed and rejected with a clear error (unsupported)
  // punctuation / operators
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kSemicolon,
  kComma,
  kDot,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kNot,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kAndAnd,
  kOrOr,
  kPlusPlus,
  kMinusMinus,
};

struct Token {
  TokenType type{TokenType::kEof};
  std::string text;
  long long int_value{0};
  double float_value{0.0};
  int line{0};
  int column{0};
};

}  // namespace slmob::lsl
