// AST for the LSL subset.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace slmob::lsl {

enum class LslType { kInteger, kFloat, kString, kVector, kList, kKey, kVoid };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kVectorLiteral,  // <x, y, z>
  kListLiteral,    // [a, b, c]
  kVariable,
  kMember,     // expr . x|y|z
  kUnary,      // -expr, !expr
  kBinary,     // + - * / % == != < > <= >= && ||
  kAssign,     // name = expr, name += expr, name -= expr, member = expr
  kCall,       // f(args)
  kCast,       // (type) expr
  kIncrement,  // name++ / name-- (post) or ++name / --name (pre)
};

struct Expr {
  ExprKind kind{};
  int line{0};
  // literals
  long long int_value{0};
  double float_value{0.0};
  std::string string_value;
  // variable / call / member / assign target
  std::string name;
  char member{'x'};
  // operator text for unary/binary/assign ("+", "==", "+=", ...)
  std::string op;
  // children: unary/cast -> [0]; binary/assign -> [0],[1];
  // vector literal -> [0..2]; list literal / call args -> all.
  std::vector<ExprPtr> children;
  // cast target
  LslType cast_type{LslType::kVoid};
  // assign-to-member: name.member = value
  bool target_is_member{false};
  bool is_prefix{false};  // for kIncrement
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  kExpr,
  kDecl,       // type name = init;
  kIf,
  kWhile,
  kFor,
  kReturn,
  kBlock,
  kStateChange,  // state foo;
};

struct Stmt {
  StmtKind kind{};
  int line{0};
  ExprPtr expr;  // kExpr, kReturn (nullable), kIf condition, kWhile condition
  // decl
  LslType decl_type{LslType::kVoid};
  std::string name;  // decl name or target state name
  ExprPtr init;
  // if/while/for bodies
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  // for
  ExprPtr for_init;
  ExprPtr for_cond;
  ExprPtr for_step;
};

struct GlobalVar {
  LslType type{LslType::kVoid};
  std::string name;
  ExprPtr init;  // may be null
};

struct Function {
  LslType return_type{LslType::kVoid};
  std::string name;
  std::vector<std::pair<LslType, std::string>> params;
  std::vector<StmtPtr> body;
};

struct EventHandler {
  std::string name;  // state_entry, timer, sensor, no_sensor, http_response...
  std::vector<std::pair<LslType, std::string>> params;
  std::vector<StmtPtr> body;
};

struct StateDef {
  std::string name;  // "default" or user state name
  std::vector<EventHandler> handlers;
};

struct Script {
  std::vector<GlobalVar> globals;
  std::vector<Function> functions;
  std::vector<StateDef> states;
};

}  // namespace slmob::lsl
