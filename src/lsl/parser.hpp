// Recursive-descent parser for the LSL subset: source -> Script AST.
// Throws LslError with line/column context on syntax errors.
#pragma once

#include <string_view>

#include "lsl/ast.hpp"
#include "lsl/lexer.hpp"

namespace slmob::lsl {

Script parse(std::string_view source);

}  // namespace slmob::lsl
