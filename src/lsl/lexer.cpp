#include "lsl/lexer.hpp"

#include <cctype>
#include <map>

namespace slmob::lsl {

LslError::LslError(const std::string& message, int line_, int column_)
    : std::runtime_error("LSL:" + std::to_string(line_) + ":" + std::to_string(column_) +
                         ": " + message),
      line(line_),
      column(column_) {}

namespace {

const std::map<std::string, TokenType, std::less<>>& keywords() {
  static const std::map<std::string, TokenType, std::less<>> kw = {
      {"integer", TokenType::kInteger}, {"float", TokenType::kFloat},
      {"string", TokenType::kString},   {"vector", TokenType::kVector},
      {"list", TokenType::kList},       {"key", TokenType::kKey},
      {"default", TokenType::kDefault}, {"state", TokenType::kState},
      {"if", TokenType::kIf},           {"else", TokenType::kElse},
      {"while", TokenType::kWhile},     {"for", TokenType::kFor},
      {"return", TokenType::kReturn},   {"jump", TokenType::kJump},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_whitespace_and_comments();
      if (at_end()) break;
      tokens.push_back(next_token());
    }
    Token eof;
    eof.type = TokenType::kEof;
    eof.line = line_;
    eof.column = column_;
    tokens.push_back(eof);
    return tokens;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace_and_comments() {
    for (;;) {
      while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
      if (peek() == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        const int start_line = line_;
        const int start_col = column_;
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (at_end()) throw LslError("unterminated block comment", start_line, start_col);
          advance();
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token make(TokenType type, std::string text) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.line = line_;
    t.column = column_;
    return t;
  }

  Token next_token() {
    const int start_line = line_;
    const int start_col = column_;
    const char c = peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return identifier();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return number();
    }
    if (c == '"') return string_literal();

    advance();
    const auto two = [&](char second, TokenType with, TokenType without) {
      if (peek() == second) {
        advance();
        return make(with, std::string{c, second});
      }
      return make(without, std::string{c});
    };
    switch (c) {
      case '{':
        return make(TokenType::kLBrace, "{");
      case '}':
        return make(TokenType::kRBrace, "}");
      case '(':
        return make(TokenType::kLParen, "(");
      case ')':
        return make(TokenType::kRParen, ")");
      case '[':
        return make(TokenType::kLBracket, "[");
      case ']':
        return make(TokenType::kRBracket, "]");
      case ';':
        return make(TokenType::kSemicolon, ";");
      case ',':
        return make(TokenType::kComma, ",");
      case '.':
        return make(TokenType::kDot, ".");
      case '%':
        return make(TokenType::kPercent, "%");
      case '*':
        return make(TokenType::kStar, "*");
      case '/':
        return make(TokenType::kSlash, "/");
      case '+':
        if (peek() == '+') {
          advance();
          return make(TokenType::kPlusPlus, "++");
        }
        return two('=', TokenType::kPlusAssign, TokenType::kPlus);
      case '-':
        if (peek() == '-') {
          advance();
          return make(TokenType::kMinusMinus, "--");
        }
        return two('=', TokenType::kMinusAssign, TokenType::kMinus);
      case '=':
        return two('=', TokenType::kEq, TokenType::kAssign);
      case '!':
        return two('=', TokenType::kNe, TokenType::kNot);
      case '<':
        return two('=', TokenType::kLe, TokenType::kLt);
      case '>':
        return two('=', TokenType::kGe, TokenType::kGt);
      case '&':
        if (peek() == '&') {
          advance();
          return make(TokenType::kAndAnd, "&&");
        }
        throw LslError("bitwise '&' is not supported", start_line, start_col);
      case '|':
        if (peek() == '|') {
          advance();
          return make(TokenType::kOrOr, "||");
        }
        throw LslError("bitwise '|' is not supported", start_line, start_col);
      default:
        throw LslError(std::string("unexpected character '") + c + "'", start_line,
                       start_col);
    }
  }

  Token identifier() {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      text.push_back(advance());
    }
    const auto it = keywords().find(text);
    if (it != keywords().end()) return make(it->second, std::move(text));
    return make(TokenType::kIdentifier, std::move(text));
  }

  Token number() {
    std::string text;
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) text.push_back(advance());
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_float = true;
      text.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek()))) text.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E') {
      is_float = true;
      text.push_back(advance());
      if (peek() == '+' || peek() == '-') text.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek()))) text.push_back(advance());
    }
    Token t = make(is_float ? TokenType::kFloatLiteral : TokenType::kIntegerLiteral, text);
    if (is_float) {
      t.float_value = std::stod(text);
    } else {
      t.int_value = std::stoll(text);
    }
    return t;
  }

  Token string_literal() {
    const int start_line = line_;
    const int start_col = column_;
    advance();  // opening quote
    std::string text;
    for (;;) {
      if (at_end()) throw LslError("unterminated string literal", start_line, start_col);
      const char c = advance();
      if (c == '"') break;
      if (c == '\\') {
        if (at_end()) throw LslError("unterminated escape", line_, column_);
        const char esc = advance();
        switch (esc) {
          case 'n':
            text.push_back('\n');
            break;
          case 't':
            text.push_back('\t');
            break;
          case '"':
            text.push_back('"');
            break;
          case '\\':
            text.push_back('\\');
            break;
          default:
            throw LslError(std::string("unknown escape '\\") + esc + "'", line_, column_);
        }
      } else {
        text.push_back(c);
      }
    }
    return make(TokenType::kStringLiteral, std::move(text));
  }

  std::string_view src_;
  std::size_t pos_{0};
  int line_{1};
  int column_{1};
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) { return Lexer(source).run(); }

}  // namespace slmob::lsl
