#include "lsl/value.hpp"

#include <cstdio>
#include <stdexcept>

namespace slmob::lsl {

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(data);
  if (is_float()) return static_cast<std::int64_t>(std::get<double>(data));
  throw std::runtime_error("LSL: expected integer value");
}

double Value::as_float() const {
  if (is_float()) return std::get<double>(data);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data));
  throw std::runtime_error("LSL: expected numeric value");
}

const std::string& Value::as_string() const {
  if (!is_string()) throw std::runtime_error("LSL: expected string value");
  return std::get<std::string>(data);
}

const slmob::Vec3& Value::as_vector() const {
  if (!is_vector()) throw std::runtime_error("LSL: expected vector value");
  return std::get<slmob::Vec3>(data);
}

const List& Value::as_list() const {
  if (!is_list()) throw std::runtime_error("LSL: expected list value");
  return std::get<List>(data);
}

bool Value::truthy() const {
  if (is_int()) return std::get<std::int64_t>(data) != 0;
  if (is_float()) return std::get<double>(data) != 0.0;
  if (is_string()) return !std::get<std::string>(data).empty();
  if (is_vector()) {
    const auto& v = std::get<slmob::Vec3>(data);
    return v.x != 0.0 || v.y != 0.0 || v.z != 0.0;
  }
  return !std::get<List>(data).empty();
}

std::string Value::to_string() const {
  if (is_int()) return std::to_string(std::get<std::int64_t>(data));
  if (is_float()) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", std::get<double>(data));
    return buf;
  }
  if (is_string()) return std::get<std::string>(data);
  if (is_vector()) {
    const auto& v = std::get<slmob::Vec3>(data);
    char buf[128];
    std::snprintf(buf, sizeof buf, "<%.5f, %.5f, %.5f>", v.x, v.y, v.z);
    return buf;
  }
  std::string out;
  for (const auto& item : std::get<List>(data)) out += item.to_string();
  return out;
}

Value Value::default_for(LslType type) {
  switch (type) {
    case LslType::kInteger:
      return Value(std::int64_t{0});
    case LslType::kFloat:
      return Value(0.0);
    case LslType::kString:
    case LslType::kKey:
      return Value(std::string{});
    case LslType::kVector:
      return Value(slmob::Vec3{});
    case LslType::kList:
      return Value(List{});
    case LslType::kVoid:
      return Value();
  }
  return Value();
}

}  // namespace slmob::lsl
