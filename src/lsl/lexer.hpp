// LSL lexer: source text -> token stream. Supports line and block comments,
// decimal integer/float literals, and double-quoted strings with the
// escapes \n, \t, backslash and double-quote.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "lsl/token.hpp"

namespace slmob::lsl {

class LslError : public std::runtime_error {
 public:
  LslError(const std::string& message, int line, int column);
  int line;
  int column;
};

// Tokenises the whole input; the last token is always kEof. Throws LslError
// on malformed input (unterminated string/comment, unknown character).
std::vector<Token> tokenize(std::string_view source);

}  // namespace slmob::lsl
