#include "lsl/parser.hpp"

namespace slmob::lsl {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Script run() {
    Script script;
    while (!check(TokenType::kEof)) {
      if (check(TokenType::kDefault) || check(TokenType::kState)) {
        script.states.push_back(state_def());
      } else if (is_type_token(peek().type) || check(TokenType::kIdentifier)) {
        parse_global(script);
      } else {
        throw error("expected global declaration, function or state");
      }
    }
    if (script.states.empty()) throw error("script has no states (need 'default')");
    return script;
  }

 private:
  // --- token helpers -------------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  [[nodiscard]] bool check(TokenType type) const { return peek().type == type; }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool match(TokenType type) {
    if (!check(type)) return false;
    advance();
    return true;
  }
  const Token& expect(TokenType type, const char* what) {
    if (!check(type)) throw error(std::string("expected ") + what);
    return advance();
  }
  [[nodiscard]] LslError error(const std::string& message) const {
    return LslError(message + " (got '" + peek().text + "')", peek().line, peek().column);
  }

  static bool is_type_token(TokenType t) {
    return t == TokenType::kInteger || t == TokenType::kFloat || t == TokenType::kString ||
           t == TokenType::kVector || t == TokenType::kList || t == TokenType::kKey;
  }

  LslType type_from_token(const Token& t) {
    switch (t.type) {
      case TokenType::kInteger:
        return LslType::kInteger;
      case TokenType::kFloat:
        return LslType::kFloat;
      case TokenType::kString:
        return LslType::kString;
      case TokenType::kVector:
        return LslType::kVector;
      case TokenType::kList:
        return LslType::kList;
      case TokenType::kKey:
        return LslType::kKey;
      default:
        throw LslError("expected type name", t.line, t.column);
    }
  }

  // --- declarations --------------------------------------------------------
  void parse_global(Script& script) {
    // Either: <type> name ( ... ) { }  -> function
    //         <type> name [= expr] ;   -> global variable
    //         name ( ... ) { }         -> void function
    if (check(TokenType::kIdentifier)) {
      Function fn;
      fn.return_type = LslType::kVoid;
      fn.name = advance().text;
      expect(TokenType::kLParen, "'(' after function name");
      parse_params(fn.params);
      fn.body = block();
      script.functions.push_back(std::move(fn));
      return;
    }
    const LslType type = type_from_token(advance());
    const std::string name = expect(TokenType::kIdentifier, "name").text;
    if (match(TokenType::kLParen)) {
      Function fn;
      fn.return_type = type;
      fn.name = name;
      parse_params(fn.params);
      fn.body = block();
      script.functions.push_back(std::move(fn));
      return;
    }
    GlobalVar var;
    var.type = type;
    var.name = name;
    if (match(TokenType::kAssign)) var.init = expression();
    expect(TokenType::kSemicolon, "';'");
    script.globals.push_back(std::move(var));
  }

  void parse_params(std::vector<std::pair<LslType, std::string>>& params) {
    if (match(TokenType::kRParen)) return;
    do {
      const LslType type = type_from_token(advance());
      params.emplace_back(type, expect(TokenType::kIdentifier, "parameter name").text);
    } while (match(TokenType::kComma));
    expect(TokenType::kRParen, "')'");
  }

  StateDef state_def() {
    StateDef state;
    if (match(TokenType::kDefault)) {
      state.name = "default";
    } else {
      expect(TokenType::kState, "'state'");
      state.name = expect(TokenType::kIdentifier, "state name").text;
    }
    expect(TokenType::kLBrace, "'{'");
    while (!match(TokenType::kRBrace)) {
      EventHandler handler;
      handler.name = expect(TokenType::kIdentifier, "event name").text;
      expect(TokenType::kLParen, "'('");
      parse_params(handler.params);
      handler.body = block();
      state.handlers.push_back(std::move(handler));
    }
    return state;
  }

  // --- statements ----------------------------------------------------------
  std::vector<StmtPtr> block() {
    expect(TokenType::kLBrace, "'{'");
    std::vector<StmtPtr> stmts;
    while (!match(TokenType::kRBrace)) stmts.push_back(statement());
    return stmts;
  }

  StmtPtr statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = peek().line;

    if (check(TokenType::kLBrace)) {
      stmt->kind = StmtKind::kBlock;
      stmt->body = block();
      return stmt;
    }
    if (is_type_token(peek().type)) {
      stmt->kind = StmtKind::kDecl;
      stmt->decl_type = type_from_token(advance());
      stmt->name = expect(TokenType::kIdentifier, "variable name").text;
      if (match(TokenType::kAssign)) stmt->init = expression();
      expect(TokenType::kSemicolon, "';'");
      return stmt;
    }
    if (match(TokenType::kIf)) {
      stmt->kind = StmtKind::kIf;
      expect(TokenType::kLParen, "'('");
      stmt->expr = expression();
      expect(TokenType::kRParen, "')'");
      stmt->body.push_back(statement());
      if (match(TokenType::kElse)) stmt->else_body.push_back(statement());
      return stmt;
    }
    if (match(TokenType::kWhile)) {
      stmt->kind = StmtKind::kWhile;
      expect(TokenType::kLParen, "'('");
      stmt->expr = expression();
      expect(TokenType::kRParen, "')'");
      stmt->body.push_back(statement());
      return stmt;
    }
    if (match(TokenType::kFor)) {
      stmt->kind = StmtKind::kFor;
      expect(TokenType::kLParen, "'('");
      if (!check(TokenType::kSemicolon)) stmt->for_init = expression();
      expect(TokenType::kSemicolon, "';'");
      if (!check(TokenType::kSemicolon)) stmt->for_cond = expression();
      expect(TokenType::kSemicolon, "';'");
      if (!check(TokenType::kRParen)) stmt->for_step = expression();
      expect(TokenType::kRParen, "')'");
      stmt->body.push_back(statement());
      return stmt;
    }
    if (match(TokenType::kReturn)) {
      stmt->kind = StmtKind::kReturn;
      if (!check(TokenType::kSemicolon)) stmt->expr = expression();
      expect(TokenType::kSemicolon, "';'");
      return stmt;
    }
    if (check(TokenType::kState)) {
      advance();
      stmt->kind = StmtKind::kStateChange;
      if (match(TokenType::kDefault)) {
        stmt->name = "default";
      } else {
        stmt->name = expect(TokenType::kIdentifier, "state name").text;
      }
      expect(TokenType::kSemicolon, "';'");
      return stmt;
    }
    if (check(TokenType::kJump)) throw error("'jump' is not supported by this subset");

    stmt->kind = StmtKind::kExpr;
    stmt->expr = expression();
    expect(TokenType::kSemicolon, "';'");
    return stmt;
  }

  // --- expressions (precedence climbing) -----------------------------------
  ExprPtr expression() { return assignment(); }

  ExprPtr assignment() {
    ExprPtr lhs = logical_or();
    if (check(TokenType::kAssign) || check(TokenType::kPlusAssign) ||
        check(TokenType::kMinusAssign)) {
      const Token& op = advance();
      if (lhs->kind != ExprKind::kVariable && lhs->kind != ExprKind::kMember) {
        throw LslError("invalid assignment target", op.line, op.column);
      }
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kAssign;
      node->line = op.line;
      node->op = op.text;
      if (lhs->kind == ExprKind::kMember) {
        node->target_is_member = true;
        node->member = lhs->member;
        if (lhs->children.at(0)->kind != ExprKind::kVariable) {
          throw LslError("can only assign to members of variables", op.line, op.column);
        }
        node->name = lhs->children.at(0)->name;
      } else {
        node->name = lhs->name;
      }
      node->children.push_back(assignment());
      return node;
    }
    return lhs;
  }

  ExprPtr binary_helper(ExprPtr (Parser::*next)(), std::initializer_list<TokenType> ops) {
    ExprPtr lhs = (this->*next)();
    for (;;) {
      bool matched = false;
      for (const TokenType t : ops) {
        if (check(t)) {
          const Token& op = advance();
          auto node = std::make_unique<Expr>();
          node->kind = ExprKind::kBinary;
          node->line = op.line;
          node->op = op.text;
          node->children.push_back(std::move(lhs));
          node->children.push_back((this->*next)());
          lhs = std::move(node);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr logical_or() { return binary_helper(&Parser::logical_and, {TokenType::kOrOr}); }
  ExprPtr logical_and() { return binary_helper(&Parser::equality, {TokenType::kAndAnd}); }
  ExprPtr equality() {
    return binary_helper(&Parser::relational, {TokenType::kEq, TokenType::kNe});
  }
  ExprPtr relational() {
    // NOTE: '<' only opens a vector literal in primary position, so using it
    // as a relational operator here is unambiguous.
    return binary_helper(&Parser::additive, {TokenType::kLt, TokenType::kGt, TokenType::kLe,
                                             TokenType::kGe});
  }
  ExprPtr additive() {
    return binary_helper(&Parser::multiplicative, {TokenType::kPlus, TokenType::kMinus});
  }
  ExprPtr multiplicative() {
    return binary_helper(&Parser::unary,
                         {TokenType::kStar, TokenType::kSlash, TokenType::kPercent});
  }

  ExprPtr unary() {
    if (check(TokenType::kMinus) || check(TokenType::kNot)) {
      const Token& op = advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = op.line;
      node->op = op.text;
      node->children.push_back(unary());
      return node;
    }
    if (check(TokenType::kPlusPlus) || check(TokenType::kMinusMinus)) {
      const Token& op = advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kIncrement;
      node->line = op.line;
      node->op = op.text;
      node->is_prefix = true;
      node->name = expect(TokenType::kIdentifier, "variable after ++/--").text;
      return node;
    }
    // Cast: (type) expr
    if (check(TokenType::kLParen) && is_type_token(peek(1).type) &&
        peek(2).type == TokenType::kRParen) {
      const Token& op = advance();  // (
      const LslType type = type_from_token(advance());
      advance();  // )
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kCast;
      node->line = op.line;
      node->cast_type = type;
      node->children.push_back(unary());
      return node;
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr node = primary();
    for (;;) {
      if (check(TokenType::kDot)) {
        const Token& op = advance();
        const Token& member = expect(TokenType::kIdentifier, "member name (x/y/z)");
        if (member.text != "x" && member.text != "y" && member.text != "z") {
          throw LslError("vector members are x, y, z", member.line, member.column);
        }
        auto access = std::make_unique<Expr>();
        access->kind = ExprKind::kMember;
        access->line = op.line;
        access->member = member.text[0];
        access->children.push_back(std::move(node));
        node = std::move(access);
      } else if ((check(TokenType::kPlusPlus) || check(TokenType::kMinusMinus)) &&
                 node->kind == ExprKind::kVariable) {
        const Token& op = advance();
        auto inc = std::make_unique<Expr>();
        inc->kind = ExprKind::kIncrement;
        inc->line = op.line;
        inc->op = op.text;
        inc->is_prefix = false;
        inc->name = node->name;
        node = std::move(inc);
      } else {
        return node;
      }
    }
  }

  ExprPtr primary() {
    const Token& t = peek();
    auto node = std::make_unique<Expr>();
    node->line = t.line;

    switch (t.type) {
      case TokenType::kIntegerLiteral:
        advance();
        node->kind = ExprKind::kIntLiteral;
        node->int_value = t.int_value;
        return node;
      case TokenType::kFloatLiteral:
        advance();
        node->kind = ExprKind::kFloatLiteral;
        node->float_value = t.float_value;
        return node;
      case TokenType::kStringLiteral:
        advance();
        node->kind = ExprKind::kStringLiteral;
        node->string_value = t.text;
        return node;
      case TokenType::kLt: {  // vector literal <x, y, z>
        advance();
        node->kind = ExprKind::kVectorLiteral;
        // Components parse at additive precedence so the closing '>' is not
        // swallowed as a relational operator — the same disambiguation rule
        // real LSL uses.
        node->children.push_back(additive());
        expect(TokenType::kComma, "','");
        node->children.push_back(additive());
        expect(TokenType::kComma, "','");
        node->children.push_back(additive());
        expect(TokenType::kGt, "'>'");
        return node;
      }
      case TokenType::kLBracket: {  // list literal
        advance();
        node->kind = ExprKind::kListLiteral;
        if (!match(TokenType::kRBracket)) {
          do {
            node->children.push_back(expression());
          } while (match(TokenType::kComma));
          expect(TokenType::kRBracket, "']'");
        }
        return node;
      }
      case TokenType::kLParen: {
        advance();
        ExprPtr inner = expression();
        expect(TokenType::kRParen, "')'");
        return inner;
      }
      case TokenType::kIdentifier: {
        advance();
        if (match(TokenType::kLParen)) {
          node->kind = ExprKind::kCall;
          node->name = t.text;
          if (!match(TokenType::kRParen)) {
            do {
              node->children.push_back(expression());
            } while (match(TokenType::kComma));
            expect(TokenType::kRParen, "')'");
          }
          return node;
        }
        node->kind = ExprKind::kVariable;
        node->name = t.text;
        return node;
      }
      default:
        throw error("expected expression");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_{0};
};

}  // namespace

Script parse(std::string_view source) { return Parser(tokenize(source)).run(); }

}  // namespace slmob::lsl
