// Tree-walking interpreter for the LSL subset.
//
// The interpreter executes one script instance attached to one in-world
// object. World-facing built-ins (llSay, llSensorRepeat, llHTTPRequest, ...)
// are routed through an LslHost implemented by the embedding object
// (src/sensors/sensor_object.*). Pure built-ins (llFloor, llVecDist,
// string/list utilities) are evaluated in-place.
//
// Event model: the host calls fire_* when the corresponding in-world event
// occurs. Each event handler runs under an instruction budget so a buggy
// script cannot stall the simulation (real LSL throttles scripts the same
// way).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lsl/ast.hpp"
#include "lsl/lexer.hpp"
#include "lsl/value.hpp"

namespace slmob::lsl {

// World services available to a script. Detection accessors are only valid
// while a sensor event is being dispatched.
class LslHost {
 public:
  virtual ~LslHost() = default;

  virtual void ll_say(std::int64_t channel, const std::string& text) = 0;
  virtual void ll_owner_say(const std::string& text) = 0;
  virtual void ll_set_timer_event(double period_seconds) = 0;
  // Repeating proximity sweep: every `rate` seconds, detect up to 16 agents
  // within `range` metres (arc ignored: our sensors are omnidirectional).
  virtual void ll_sensor_repeat(const std::string& name, const std::string& key,
                                std::int64_t type, double range, double arc,
                                double rate) = 0;
  virtual slmob::Vec3 ll_get_pos() = 0;
  // The object's own key; defaulted so hosts without an identity need not
  // override. Sensor reports embed it so the collector can deduplicate
  // retried flushes per object.
  virtual std::string ll_get_key() { return "object-0"; }
  virtual double ll_get_time() = 0;           // seconds since script start
  virtual std::int64_t ll_get_unix_time() = 0;  // virtual epoch seconds
  virtual double ll_frand(double max) = 0;
  // Starts an HTTP request; returns the request key. The host later calls
  // fire_http_response with the same key.
  virtual std::string ll_http_request(const std::string& url, const List& params,
                                      const std::string& body) = 0;
  // Bytes of script memory still free (the 16 KB limit of the paper).
  virtual std::int64_t ll_get_free_memory() = 0;

  virtual std::size_t detected_count() const = 0;
  virtual slmob::Vec3 detected_pos(std::size_t i) const = 0;
  virtual std::string detected_key(std::size_t i) const = 0;
  virtual std::string detected_name(std::size_t i) const = 0;
};

class Interpreter {
 public:
  // Parses and binds the script; throws LslError on syntax errors.
  Interpreter(std::string_view source, LslHost& host);
  Interpreter(Script script, LslHost& host);

  // Enters the default state and runs its state_entry handler.
  void start();

  void fire_timer();
  void fire_sensor(std::int64_t detected);
  void fire_no_sensor();
  void fire_http_response(const std::string& request_key, std::int64_t status,
                          const std::string& body);

  [[nodiscard]] const std::string& current_state() const { return current_state_; }
  [[nodiscard]] bool has_handler(const std::string& event) const;
  // Global variable value (test/diagnostic access).
  [[nodiscard]] const Value* global(const std::string& name) const;
  // All globals (used by hosts for script-memory accounting).
  [[nodiscard]] const std::map<std::string, Value>& globals() const { return globals_; }
  void set_instruction_budget(std::uint64_t budget) { budget_per_event_ = budget; }
  [[nodiscard]] std::uint64_t instructions_executed() const { return total_ops_; }

 private:
  enum class Flow { kNormal, kReturn, kStateChange };

  struct Scope {
    std::map<std::string, Value> vars;
  };

  void fire_event(const std::string& name, const std::vector<Value>& args);
  const StateDef& state_by_name(const std::string& name) const;

  Flow exec_block(const std::vector<StmtPtr>& stmts);
  Flow exec_stmt(const Stmt& stmt);
  Value eval(const Expr& expr);
  Value call_function(const std::string& name, std::vector<Value> args, int line);
  Value call_builtin(const std::string& name, std::vector<Value>& args, int line,
                     bool& handled);
  Value* find_var(const std::string& name);
  void charge(int line);

  Script script_;
  LslHost& host_;
  std::map<std::string, Value> globals_;
  std::vector<Scope> locals_;  // scope stack of the current call
  std::string current_state_{"default"};
  std::string pending_state_;
  Value return_value_;
  std::uint64_t budget_per_event_{500000};
  std::uint64_t ops_this_event_{0};
  std::uint64_t total_ops_{0};
  bool started_{false};
  int call_depth_{0};
};

}  // namespace slmob::lsl
