// Runtime values for the LSL interpreter.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "lsl/ast.hpp"
#include "util/vec3.hpp"

namespace slmob::lsl {

struct Value;
using List = std::vector<Value>;

struct Value {
  // integer, float, string (also "key"), vector, list
  std::variant<std::int64_t, double, std::string, slmob::Vec3, List> data{std::int64_t{0}};

  Value() = default;
  explicit Value(std::int64_t v) : data(v) {}
  explicit Value(double v) : data(v) {}
  explicit Value(std::string v) : data(std::move(v)) {}
  explicit Value(slmob::Vec3 v) : data(v) {}
  explicit Value(List v) : data(std::move(v)) {}

  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(data); }
  [[nodiscard]] bool is_float() const { return std::holds_alternative<double>(data); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data); }
  [[nodiscard]] bool is_vector() const { return std::holds_alternative<slmob::Vec3>(data); }
  [[nodiscard]] bool is_list() const { return std::holds_alternative<List>(data); }

  // Numeric accessors with int->float promotion; throw LslError-compatible
  // std::runtime_error when the value has the wrong type.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_float() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const slmob::Vec3& as_vector() const;
  [[nodiscard]] const List& as_list() const;

  // LSL truthiness: nonzero number, non-empty string/list, nonzero vector.
  [[nodiscard]] bool truthy() const;

  // String rendering, matching LSL (string) cast conventions: floats with 6
  // decimals, vectors as "<x, y, z>".
  [[nodiscard]] std::string to_string() const;

  // Default value for a declared type.
  static Value default_for(LslType type);
};

}  // namespace slmob::lsl
