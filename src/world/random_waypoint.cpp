#include "world/random_waypoint.hpp"

namespace slmob {

MobilityDecision RandomWaypointModel::next(const Avatar& avatar, const Land& land,
                                           Rng& rng) {
  (void)avatar;
  MobilityDecision d;
  d.waypoint = land.clamp(
      {rng.uniform(0.0, land.size()), rng.uniform(0.0, land.size()), land.ground_z()});
  d.speed = rng.uniform(params_.speed_min, params_.speed_max);
  d.pause = rng.uniform(params_.pause_min, params_.pause_max);
  d.jitter_radius = 0.0;
  return d;
}

}  // namespace slmob
