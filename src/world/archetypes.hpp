// Land archetypes: the three target lands the paper measured, rebuilt as
// calibrated world configurations.
//
//  * Apfel Land     — a German-speaking out-door arena for newbies: many
//                     spread-out POIs, sparse population (1568 unique
//                     visitors / 13 avg concurrent).
//  * Dance Island   — a virtual discotheque (in-door): nearly all activity
//                     on a tiny dance floor and bar (3347 / 34).
//  * Isle of View   — land hosting a St. Valentine's event: dense crowd
//                     around the event stage (2656 / 65).
//
// Each archetype bundles the land geometry, the population process and the
// POI-gravity parameters that together reproduce the paper's per-land
// statistics (see DESIGN.md §5 for targets, EXPERIMENTS.md for results).
#pragma once

#include <memory>
#include <string>

#include "world/land.hpp"
#include "world/poi_gravity.hpp"
#include "world/population.hpp"
#include "world/world.hpp"

namespace slmob {

enum class LandArchetype { kApfelLand, kDanceIsland, kIsleOfView };

// Human-readable name matching the paper's figures ("Apfelland", "Dance",
// "Isle Of View").
std::string archetype_name(LandArchetype archetype);

// All archetypes, in the order the paper lists them.
inline constexpr LandArchetype kAllArchetypes[] = {
    LandArchetype::kApfelLand, LandArchetype::kDanceIsland, LandArchetype::kIsleOfView};

Land make_land(LandArchetype archetype);
PopulationParams make_population(LandArchetype archetype);
PoiGravityParams make_mobility_params(LandArchetype archetype);

// Convenience: a fully wired World for the archetype.
std::unique_ptr<World> make_world(LandArchetype archetype, std::uint64_t seed);

}  // namespace slmob
