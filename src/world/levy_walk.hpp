// Levy walk mobility: flight lengths and pause times follow truncated
// power laws (Rhee et al., "On the Levy-walk nature of human mobility",
// INFOCOM 2008 — reference [8] of the paper). Second baseline for the
// mobility-model ablation.
#pragma once

#include "stats/samplers.hpp"
#include "world/mobility.hpp"

namespace slmob {

struct LevyWalkParams {
  double flight_xm{1.0};      // minimum flight length (m)
  double flight_alpha{1.6};   // flight length power-law exponent
  double flight_cap{300.0};   // truncation (land-scale)
  double pause_xm{2.0};       // minimum pause (s)
  double pause_alpha{1.4};
  double pause_cap{1800.0};
  double speed_min{1.4};
  double speed_max{3.4};
};

class LevyWalkModel final : public MobilityModel {
 public:
  explicit LevyWalkModel(LevyWalkParams params = {});

  MobilityDecision on_login(const Avatar& avatar, const Land& land, Rng& rng) override {
    return next(avatar, land, rng);
  }
  MobilityDecision next(const Avatar& avatar, const Land& land, Rng& rng) override;

 private:
  LevyWalkParams params_;
  BoundedParetoSampler flight_;
  BoundedParetoSampler pause_;
};

}  // namespace slmob
