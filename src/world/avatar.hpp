// Avatar entity and its movement state machine.
//
// Synthetic avatars are driven by a MobilityModel; externally controlled
// avatars (protocol clients such as the crawler) receive waypoints via the
// sim server instead. Both kinds share the same kinematics, so from a
// measurement perspective the crawler is indistinguishable from a user —
// which is exactly the perturbation problem §2 of the paper discusses.
#pragma once

#include "util/ids.hpp"
#include "util/time.hpp"
#include "util/vec3.hpp"

namespace slmob {

enum class AvatarState {
  kTravelling,  // moving toward `waypoint` at `speed`
  kPaused,      // dwelling until `pause_until` (optionally jittering)
};

// Behavioural archetype of a synthetic avatar, fixed at login.
enum class AvatarKind {
  kRegular,   // hops between POIs
  kIdler,     // mostly stationary (camping/AFK users)
  kExplorer,  // roams long distances across the land
};

struct Avatar {
  AvatarId id;
  Vec3 pos;
  AvatarState state{AvatarState::kPaused};
  AvatarKind kind{AvatarKind::kRegular};

  Vec3 waypoint;
  double speed{0.0};          // m/s while travelling
  Seconds pause_until{0.0};   // valid while paused
  Seconds login_time{0.0};
  Seconds logout_at{0.0};     // scheduled departure (synthetic avatars)

  // While paused, avatars may take small steps around `anchor` within
  // `jitter_radius` (e.g. dancing on a dance floor).
  Vec3 anchor;
  double jitter_radius{0.0};
  double jitter_rate{0.0};  // per-second probability of a jitter step

  // Index of the POI the avatar currently gravitates around; -1 if none.
  int current_poi{-1};
  // First POI adopted in this session ("my spot"): excursions tend to
  // return here, which is what produces long inter-contact gaps between
  // users who share a home POI.
  int home_poi{-1};

  bool sitting{false};            // sitting avatars report position {0,0,0}
  bool externally_controlled{false};  // protocol client drives this avatar
  bool debug_pinned{false};  // test avatar: stationary, never pooled for revisits
  Seconds last_intentional_move{0.0};  // last waypoint change (activity signal)

  [[nodiscard]] bool is_synthetic() const { return !externally_controlled; }
};

// Advances one avatar by dt of kinematics only (no decisions): travelling
// avatars step toward their waypoint, arriving exactly when close enough.
// Returns true if the avatar reached its waypoint during this step.
bool step_kinematics(Avatar& avatar, Seconds dt);

// Component-level form of the same step, for structure-of-arrays storage
// where position/waypoint/speed live in separate arrays. The caller is
// responsible for the state check; identical arithmetic to the Avatar&
// overload (which delegates here).
inline bool step_kinematics(Vec3& pos, const Vec3& waypoint, double speed, Seconds dt) {
  const double dist = pos.distance_to(waypoint);
  const double step = speed * dt;
  if (dist <= step || dist <= 1e-9) {
    pos = waypoint;
    return true;
  }
  pos += pos.direction_to(waypoint) * step;
  return false;
}

}  // namespace slmob
