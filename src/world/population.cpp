#include "world/population.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slmob {

PopulationProcess::PopulationProcess(PopulationParams params)
    : params_(params), session_(params.session_median, params.session_sigma) {
  if (params.target_unique_users <= 0.0 || params.horizon <= 0.0) {
    throw std::invalid_argument("PopulationProcess: bad target/horizon");
  }
  if (params.diurnal_depth < 0.0 || params.diurnal_depth >= 1.0) {
    throw std::invalid_argument("PopulationProcess: diurnal_depth must be in [0,1)");
  }
  if (params.revisit_probability < 0.0 || params.revisit_probability >= 1.0) {
    throw std::invalid_argument("PopulationProcess: revisit_probability must be in [0,1)");
  }
  // Only (1 - p_revisit) of arrivals introduce a new distinct visitor, so
  // the total arrival rate is scaled up to hit the distinct-visitor target.
  base_rate_ =
      params.target_unique_users / (params.horizon * (1.0 - params.revisit_probability));
}

double PopulationProcess::rate(Seconds t) const {
  const double two_pi = 6.283185307179586;
  return base_rate_ *
         (1.0 + params_.diurnal_depth *
                    std::sin(two_pi * t / kSecondsPerDay + params_.diurnal_phase));
}

std::size_t PopulationProcess::arrivals(Seconds now, Seconds dt, Rng& rng) const {
  // Poisson thinning with the rate evaluated at the interval start; dt is a
  // simulation tick (~1 s), far below the diurnal timescale.
  const double mean = rate(now) * dt;
  // Knuth sampling is fine: mean << 1 for our rates.
  double l = std::exp(-mean);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > l);
  return k - 1;
}

Seconds PopulationProcess::session_duration(Rng& rng) const {
  const Seconds raw = session_.sample(rng);
  return std::clamp(raw, params_.session_min, params_.session_cap);
}

}  // namespace slmob
