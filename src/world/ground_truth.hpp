// GroundTruthRecorder: samples the world state directly (no protocol, no
// quantisation, no loss). Used as the reference against which monitoring
// architectures (crawler, sensor grid) are evaluated, and by tests.
#pragma once

#include "trace/trace.hpp"
#include "world/world.hpp"

namespace slmob {

class GroundTruthRecorder {
 public:
  GroundTruthRecorder(const World& world, Seconds sample_interval)
      : world_(world), trace_(world.land().name(), sample_interval),
        interval_(sample_interval) {}

  // Engine hook (kPriorityMonitor).
  void tick(Seconds now, Seconds dt) {
    (void)dt;
    if (now < next_sample_) return;
    next_sample_ = now + interval_;
    Snapshot snap;
    snap.time = now;
    const auto& store = world_.avatars();
    snap.fixes.reserve(store.size());
    for (std::size_t i = 0; i < store.size(); ++i) {
      if (store.external(i)) continue;  // instruments are not users
      snap.fixes.push_back({store.id(i), store.pos(i)});
    }
    trace_.add(std::move(snap));
  }

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] Trace take_trace() { return std::move(trace_); }

 private:
  const World& world_;
  Trace trace_;
  Seconds interval_;
  Seconds next_sample_{0.0};
};

}  // namespace slmob
