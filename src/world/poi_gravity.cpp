#include "world/poi_gravity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slmob {

PoiGravityModel::PoiGravityModel(const Land& land, PoiGravityParams params)
    : params_(params) {
  if (land.pois().empty()) {
    throw std::invalid_argument("PoiGravityModel: land has no POIs");
  }
  std::vector<double> weights;
  weights.reserve(land.pois().size());
  for (const auto& poi : land.pois()) weights.push_back(poi.weight);
  poi_sampler_.emplace(std::move(weights));
  pause_sampler_.emplace(params_.pause_xm, params_.pause_alpha, params_.pause_cap);
}

AvatarKind PoiGravityModel::assign_kind(Rng& rng) const {
  const double u = rng.uniform();
  if (u < params_.explorer_fraction) return AvatarKind::kExplorer;
  if (u < params_.explorer_fraction + params_.idler_fraction) return AvatarKind::kIdler;
  return AvatarKind::kRegular;
}

int PoiGravityModel::pick_poi(Rng& rng, int exclude) const {
  if (poi_sampler_->size() == 1) return 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto k = static_cast<int>(poi_sampler_->sample(rng));
    if (k != exclude) return k;
  }
  return static_cast<int>(poi_sampler_->sample(rng));
}

Vec3 PoiGravityModel::point_in_poi(const Land& land, int index, Rng& rng) const {
  const Poi& poi = land.pois().at(static_cast<std::size_t>(index));
  // Uniform in disc via sqrt radius.
  const double r = poi.radius * std::sqrt(rng.uniform());
  const double theta = rng.uniform(0.0, 6.283185307179586);
  return land.clamp({poi.center.x + r * std::cos(theta),
                     poi.center.y + r * std::sin(theta), land.ground_z()});
}

MobilityDecision PoiGravityModel::hop_to(int poi, const Land& land, Rng& rng) const {
  MobilityDecision d;
  d.poi_index = poi;
  d.waypoint = point_in_poi(land, poi, rng);
  d.speed = rng.uniform(params_.speed_min, params_.speed_max);
  d.pause = pause_sampler_->sample(rng);
  d.jitter_radius = land.pois().at(static_cast<std::size_t>(poi)).radius * params_.jitter_scale;
  d.jitter_rate = params_.jitter_rate;
  return d;
}

MobilityDecision PoiGravityModel::dwell_step(const Avatar& avatar, const Land& land,
                                             Rng& rng) const {
  // Stay at the current POI: reposition locally around the current spot
  // (not across the whole POI disc — people hold their patch of floor),
  // which keeps neighbourhoods stable between decisions.
  MobilityDecision d;
  d.poi_index = avatar.current_poi;
  if (avatar.current_poi >= 0) {
    const Poi& poi = land.pois().at(static_cast<std::size_t>(avatar.current_poi));
    const double local = poi.radius * params_.dwell_step_scale;
    const double r = local * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 6.283185307179586);
    Vec3 target{avatar.pos.x + r * std::cos(theta), avatar.pos.y + r * std::sin(theta),
                land.ground_z()};
    // Drift back toward the POI centre if the local step strayed outside.
    if (target.distance2d_to(poi.center) > poi.radius) {
      target = poi.center + (target - poi.center) * (poi.radius / target.distance2d_to(poi.center));
    }
    d.waypoint = land.clamp(target);
    d.jitter_radius = poi.radius * params_.jitter_scale;
  } else {
    // Free-roaming avatar pausing in place: wander a couple of metres.
    d.waypoint = land.clamp({avatar.pos.x + rng.uniform(-2.0, 2.0),
                             avatar.pos.y + rng.uniform(-2.0, 2.0), land.ground_z()});
    d.jitter_radius = 2.0;
  }
  d.speed = rng.uniform(params_.speed_min, params_.speed_max);
  d.pause = pause_sampler_->sample(rng);
  d.jitter_rate = params_.jitter_rate;
  return d;
}

MobilityDecision PoiGravityModel::on_login(const Avatar& avatar, const Land& land,
                                           Rng& rng) {
  (void)avatar;
  if (rng.bernoulli(params_.p_login_wander)) {
    // Look around first: a free leg to a uniform point, then settle.
    MobilityDecision d;
    d.poi_index = -1;
    d.waypoint = land.clamp(
        {rng.uniform(0.0, land.size()), rng.uniform(0.0, land.size()), land.ground_z()});
    d.speed = rng.uniform(params_.speed_min, params_.speed_max);
    d.pause = pause_sampler_->sample(rng);
    d.jitter_radius = 0.0;
    d.jitter_rate = params_.jitter_rate;
    return d;
  }
  // Walk from the spawn point to a first POI.
  return hop_to(pick_poi(rng), land, rng);
}

MobilityDecision PoiGravityModel::next(const Avatar& avatar, const Land& land, Rng& rng) {
  switch (avatar.kind) {
    case AvatarKind::kIdler: {
      // Idlers stay put with very long pauses and no jitter.
      MobilityDecision d;
      d.poi_index = avatar.current_poi;
      d.waypoint = avatar.pos;
      d.speed = params_.speed_min;
      d.pause = pause_sampler_->sample(rng) * 6.0;
      d.jitter_radius = 0.0;
      return d;
    }
    case AvatarKind::kExplorer: {
      if (rng.bernoulli(params_.p_explore_far)) {
        MobilityDecision d;
        d.poi_index = -1;
        d.waypoint = land.clamp(
            {rng.uniform(0.0, land.size()), rng.uniform(0.0, land.size()), land.ground_z()});
        d.speed = rng.uniform(params_.speed_min, params_.speed_max);
        // Explorers keep moving: long flights chained with short stops.
        d.pause = std::min(pause_sampler_->sample(rng), params_.explorer_pause_cap);
        d.jitter_radius = 0.0;
        return d;
      }
      return hop_to(pick_poi(rng, avatar.current_poi), land, rng);
    }
    case AvatarKind::kRegular:
      break;
  }
  if (avatar.current_poi < 0 || rng.bernoulli(params_.p_switch_poi)) {
    if (avatar.home_poi >= 0 && avatar.home_poi != avatar.current_poi &&
        rng.bernoulli(params_.p_return_home)) {
      return hop_to(avatar.home_poi, land, rng);
    }
    return hop_to(pick_poi(rng, avatar.current_poi), land, rng);
  }
  return dwell_step(avatar, land, rng);
}

}  // namespace slmob
