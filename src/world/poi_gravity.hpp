// The POI-gravity mobility model.
//
// Core empirical findings of the paper this model is built to reproduce:
//  * "users in Second Life revolve around several points of interest,
//    traveling in general short distances";
//  * zone occupation is extremely skewed (hot-spots, most cells empty);
//  * CT/ICT distributions show a power-law head with exponential cut-off.
//
// Mechanics: at login an avatar walks from a spawn point to a POI drawn by
// popularity weight. At each decision epoch it either (a) keeps dwelling at
// its POI — taking a small jitter step within the POI disc — or (b) hops to
// a different POI. Pause durations are bounded-Pareto, which produces the
// power-law CT head; the session cap produces the exponential cut-off.
// Idler avatars barely move; explorer avatars take long excursions to
// uniform points of the land (the >2 km travellers of Fig. 4a).
#pragma once

#include <optional>
#include <vector>

#include "stats/samplers.hpp"
#include "world/mobility.hpp"

namespace slmob {

struct PoiGravityParams {
  // Probability that a decision hops to a different POI (vs dwelling).
  double p_switch_poi{0.08};
  // When hopping while away from the home POI: probability of returning
  // home rather than picking a fresh POI. Home-returns manufacture the
  // long inter-contact gaps (excursion-and-return) the paper observes.
  double p_return_home{0.4};
  // Pause duration distribution while dwelling (bounded Pareto, seconds).
  double pause_xm{8.0};
  double pause_alpha{1.3};
  double pause_cap{1800.0};
  // Walking speed range (m/s). SL avatars walk ~3.2 m/s, run ~5 m/s.
  double speed_min{1.4};
  double speed_max{3.4};
  // Fraction of avatars of each special kind.
  double idler_fraction{0.10};
  double explorer_fraction{0.02};
  // Explorers: probability an explorer decision targets a uniform point of
  // the land instead of a POI.
  double p_explore_far{0.6};
  // Pause cap between explorer flights (small = restless tour-taker).
  Seconds explorer_pause_cap{30.0};
  // Probability that a fresh login starts with a free wander leg before
  // settling at a POI (out-door lands: newbies look around first). This is
  // what stretches the first-contact time on sparse lands.
  double p_login_wander{0.0};
  // Jitter radius multiplier relative to the POI radius (1.0 = anywhere in
  // the POI disc). Jitter is anchored at the avatar's chosen spot, so small
  // values keep a dweller near one place.
  double jitter_scale{0.35};
  // Per-second probability of a jitter step while dwelling.
  double jitter_rate{0.015};
  // Local repositioning radius at a dwell decision, as a fraction of the
  // POI radius (people hold their patch; they do not re-roll the whole POI).
  double dwell_step_scale{0.3};
  // Zipf skew for POI popularity when POI weights are equal; POI weights are
  // used directly when they differ.
  double zipf_s{1.0};
};

class PoiGravityModel final : public MobilityModel {
 public:
  PoiGravityModel(const Land& land, PoiGravityParams params);

  MobilityDecision on_login(const Avatar& avatar, const Land& land, Rng& rng) override;
  MobilityDecision next(const Avatar& avatar, const Land& land, Rng& rng) override;
  AvatarKind assign_kind(Rng& rng) const override;

  [[nodiscard]] const PoiGravityParams& params() const { return params_; }

 private:
  // Draws a POI index by popularity, optionally excluding `exclude`.
  [[nodiscard]] int pick_poi(Rng& rng, int exclude = -1) const;
  // Uniform point within the disc of POI `index`.
  [[nodiscard]] Vec3 point_in_poi(const Land& land, int index, Rng& rng) const;
  [[nodiscard]] MobilityDecision dwell_step(const Avatar& avatar, const Land& land,
                                            Rng& rng) const;
  [[nodiscard]] MobilityDecision hop_to(int poi, const Land& land, Rng& rng) const;

  PoiGravityParams params_;
  std::optional<CategoricalSampler> poi_sampler_;
  std::optional<BoundedParetoSampler> pause_sampler_;
};

}  // namespace slmob
