#include "world/land.hpp"

#include <algorithm>

namespace slmob {

Land::Land(std::string name, double size) : name_(std::move(name)), size_(size) {
  if (size <= 0.0) throw std::invalid_argument("Land: size must be positive");
}

void Land::add_poi(Poi poi) {
  if (poi.radius <= 0.0 || poi.weight < 0.0) {
    throw std::invalid_argument("Land::add_poi: bad radius/weight");
  }
  if (!contains(clamp(poi.center))) {
    throw std::invalid_argument("Land::add_poi: POI outside land");
  }
  pois_.push_back(std::move(poi));
}

void Land::add_spawn_point(Vec3 p) { spawn_points_.push_back(clamp(p)); }

Vec3 Land::clamp(Vec3 p) const {
  const double margin = 0.5;
  p.x = std::clamp(p.x, 0.0 + margin, size_ - margin);
  p.y = std::clamp(p.y, 0.0 + margin, size_ - margin);
  p.z = ground_z_;
  return p;
}

bool Land::contains(const Vec3& p) const {
  return p.x >= 0.0 && p.x < size_ && p.y >= 0.0 && p.y < size_;
}

}  // namespace slmob
