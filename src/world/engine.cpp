#include "world/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace slmob {

SimEngine::SimEngine(Seconds tick_length) : tick_length_(tick_length) {
  if (tick_length <= 0.0) throw std::invalid_argument("SimEngine: bad tick length");
}

void SimEngine::add(int priority, TickFn fn) {
  if (!fn) throw std::invalid_argument("SimEngine::add: null callback");
  entries_.push_back({priority, std::move(fn)});
  sorted_ = false;
}

void SimEngine::step() {
  if (!sorted_) {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) { return a.priority < b.priority; });
    sorted_ = true;
  }
  const Seconds t = now();
  for (auto& e : entries_) e.fn(t, tick_length_);
  ++tick_;
}

void SimEngine::run_until(Seconds until) {
  while (now() + tick_length_ <= until + 1e-9) step();
}

void SimEngine::run_ticks(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) step();
}

}  // namespace slmob
