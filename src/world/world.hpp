// World: one land plus its live avatar population.
//
// The world owns the ground truth the monitoring architectures try to
// measure. Synthetic avatars arrive via the PopulationProcess and move per
// the MobilityModel; externally controlled avatars (protocol clients, e.g.
// the crawler) are added/steered by the sim server.
//
// The world also implements the "curiosity" perturbation the paper reports:
// a visibly idle, silent avatar (a naive crawler) becomes an attractor that
// nearby users walk up to, biasing the very mobility being measured.
//
// Storage is structure-of-arrays (AvatarStore), kept in ascending-id order —
// the iteration order of the std::map it replaced — so the per-tick RNG draw
// sequence, and therefore every seeded trace, is unchanged by the layout.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/spatial_index.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "world/avatar.hpp"
#include "world/avatar_store.hpp"
#include "world/land.hpp"
#include "world/mobility.hpp"
#include "world/population.hpp"

namespace slmob {

// One completed (or still open) visit, recorded by the world as ground
// truth. logout < 0 means the avatar is still online.
struct VisitRecord {
  AvatarId avatar;
  Seconds login{0.0};
  Seconds logout{-1.0};
};

struct CuriosityParams {
  bool enabled{true};
  // An externally controlled avatar idle and silent for longer than this is
  // deemed a bot and starts attracting users.
  Seconds idle_threshold{120.0};
  // Per-decision probability that a synthetic avatar targets the attractor.
  double approach_probability{0.25};
  // Users approach to within this distance of the attractor.
  double approach_radius{4.0};
};

struct WorldStats {
  std::uint64_t total_logins{0};
  std::uint64_t rejected_logins{0};  // region at capacity
  std::uint64_t total_logouts{0};
  std::uint64_t curiosity_approaches{0};
};

class World {
 public:
  World(Land land, std::unique_ptr<MobilityModel> model, PopulationParams population,
        std::uint64_t seed);

  // Advances virtual time by dt: processes logouts, arrivals, decisions and
  // kinematics. `now` is the time at the *start* of the tick.
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] const Land& land() const { return land_; }
  [[nodiscard]] const AvatarStore& avatars() const { return avatars_; }
  [[nodiscard]] std::size_t concurrent() const { return avatars_.size(); }
  // Copy of the avatar's current row; nullopt when not online.
  [[nodiscard]] std::optional<Avatar> find(AvatarId id) const;
  [[nodiscard]] const WorldStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<VisitRecord>& visit_log() const { return visit_log_; }

  // Store indices (see avatars()) of avatars within planar distance `radius`
  // of `pos`, in ascending index (= ascending id) order. Served from a
  // uniform grid that is rebuilt lazily, at most once per (tick, radius), so
  // repeated queries within a tick — chat audibility, sensor sweeps — cost
  // O(neighbours) instead of a population scan each.
  [[nodiscard]] const std::vector<std::uint32_t>& within(const Vec3& pos,
                                                         double radius) const;

  // --- external (protocol-controlled) avatars -----------------------------
  // Adds an avatar steered from outside; returns nullopt when the region is
  // full. The avatar never logs out on its own.
  std::optional<AvatarId> add_external_avatar(Seconds now, Vec3 pos);
  void remove_external_avatar(Seconds now, AvatarId id);
  // Steers an external avatar toward a waypoint.
  void steer_external(Seconds now, AvatarId id, Vec3 waypoint, double speed);
  // Marks activity that makes the avatar look human (chatting).
  void mark_social_activity(Seconds now, AvatarId id);
  void set_sitting(AvatarId id, bool sitting);

  void set_curiosity(CuriosityParams params) { curiosity_ = params; }
  [[nodiscard]] const CuriosityParams& curiosity() const { return curiosity_; }

  // Flash-crowd control (kFlashCrowd fault windows): multiplies the *count*
  // of arrivals admitted per tick, leaving the underlying Poisson draw — and
  // therefore the RNG draw sequence of unboosted runs — untouched. 1.0 =
  // nominal arrivals.
  void set_arrival_boost(double factor) { arrival_boost_ = factor < 1.0 ? 1.0 : factor; }
  [[nodiscard]] double arrival_boost() const { return arrival_boost_; }

  // Test hook: force-inject a synthetic avatar with a fixed session.
  AvatarId debug_add_synthetic(Seconds now, Vec3 pos, Seconds logout_at);
  // Bench hook: admits `n` immediate logins at `now` through the organic
  // arrival path (same RNG draws per login, capacity respected), so scale
  // benches can reach a target concurrency without simulating hours of
  // ramp-up.
  void debug_prefill(Seconds now, std::size_t n);

  // World RNG stream position, recorded by checkpoints and compared after a
  // deterministic replay to detect config drift or non-determinism.
  [[nodiscard]] std::array<std::uint64_t, 4> rng_state() const { return rng_.state(); }

 private:
  void process_arrivals(Seconds now, Seconds dt);
  void process_departures(Seconds now);
  void admit_arrival(Seconds now);
  void decide_at(Seconds now, std::size_t i);
  void decide(Seconds now, Avatar& avatar);
  void apply_decision(Seconds now, Avatar& avatar, const MobilityDecision& d);
  // Currently active attractor position (a bot-looking external avatar).
  [[nodiscard]] std::optional<Vec3> attractor(Seconds now) const;
  AvatarId next_id();
  void touch() { ++version_; }

  Land land_;
  std::unique_ptr<MobilityModel> model_;
  PopulationProcess population_;
  Rng rng_;
  AvatarStore avatars_;
  // Ids of externally controlled avatars, ascending — the attractor scan
  // walks only these instead of the whole population.
  std::vector<AvatarId> external_ids_;
  // Previously seen visitors available for re-visits (same identity).
  struct DepartedUser {
    AvatarId id;
    AvatarKind kind;
    int home_poi;
  };
  std::vector<DepartedUser> departed_pool_;
  std::map<AvatarId, Seconds> last_social_activity_;
  std::uint32_t next_id_{1};
  double arrival_boost_{1.0};
  CuriosityParams curiosity_;
  WorldStats stats_;
  std::vector<VisitRecord> visit_log_;
  std::map<AvatarId, std::size_t> open_visits_;  // avatar -> index in visit_log_

  // Lazily rebuilt range-query grid (see within()). version_ bumps on every
  // mutation of positions or membership, invalidating the cached grid.
  std::uint64_t version_{0};
  mutable std::optional<SpatialGrid> grid_;
  mutable double grid_radius_{0.0};
  mutable std::uint64_t grid_version_{0};
  mutable std::vector<std::uint32_t> grid_query_;
};

}  // namespace slmob
