// World: one land plus its live avatar population.
//
// The world owns the ground truth the monitoring architectures try to
// measure. Synthetic avatars arrive via the PopulationProcess and move per
// the MobilityModel; externally controlled avatars (protocol clients, e.g.
// the crawler) are added/steered by the sim server.
//
// The world also implements the "curiosity" perturbation the paper reports:
// a visibly idle, silent avatar (a naive crawler) becomes an attractor that
// nearby users walk up to, biasing the very mobility being measured.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"
#include "world/avatar.hpp"
#include "world/land.hpp"
#include "world/mobility.hpp"
#include "world/population.hpp"

namespace slmob {

// One completed (or still open) visit, recorded by the world as ground
// truth. logout < 0 means the avatar is still online.
struct VisitRecord {
  AvatarId avatar;
  Seconds login{0.0};
  Seconds logout{-1.0};
};

struct CuriosityParams {
  bool enabled{true};
  // An externally controlled avatar idle and silent for longer than this is
  // deemed a bot and starts attracting users.
  Seconds idle_threshold{120.0};
  // Per-decision probability that a synthetic avatar targets the attractor.
  double approach_probability{0.25};
  // Users approach to within this distance of the attractor.
  double approach_radius{4.0};
};

struct WorldStats {
  std::uint64_t total_logins{0};
  std::uint64_t rejected_logins{0};  // region at capacity
  std::uint64_t total_logouts{0};
  std::uint64_t curiosity_approaches{0};
};

class World {
 public:
  World(Land land, std::unique_ptr<MobilityModel> model, PopulationParams population,
        std::uint64_t seed);

  // Advances virtual time by dt: processes logouts, arrivals, decisions and
  // kinematics. `now` is the time at the *start* of the tick.
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] const Land& land() const { return land_; }
  [[nodiscard]] const std::map<AvatarId, Avatar>& avatars() const { return avatars_; }
  [[nodiscard]] std::size_t concurrent() const { return avatars_.size(); }
  [[nodiscard]] const Avatar* find(AvatarId id) const;
  [[nodiscard]] const WorldStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<VisitRecord>& visit_log() const { return visit_log_; }

  // --- external (protocol-controlled) avatars -----------------------------
  // Adds an avatar steered from outside; returns nullopt when the region is
  // full. The avatar never logs out on its own.
  std::optional<AvatarId> add_external_avatar(Seconds now, Vec3 pos);
  void remove_external_avatar(Seconds now, AvatarId id);
  // Steers an external avatar toward a waypoint.
  void steer_external(Seconds now, AvatarId id, Vec3 waypoint, double speed);
  // Marks activity that makes the avatar look human (chatting).
  void mark_social_activity(Seconds now, AvatarId id);
  void set_sitting(AvatarId id, bool sitting);

  void set_curiosity(CuriosityParams params) { curiosity_ = params; }
  [[nodiscard]] const CuriosityParams& curiosity() const { return curiosity_; }

  // Test hook: force-inject a synthetic avatar with a fixed session.
  AvatarId debug_add_synthetic(Seconds now, Vec3 pos, Seconds logout_at);

  // World RNG stream position, recorded by checkpoints and compared after a
  // deterministic replay to detect config drift or non-determinism.
  [[nodiscard]] std::array<std::uint64_t, 4> rng_state() const { return rng_.state(); }

 private:
  void process_arrivals(Seconds now, Seconds dt);
  void process_departures(Seconds now);
  void decide(Seconds now, Avatar& avatar);
  void apply_decision(Seconds now, Avatar& avatar, const MobilityDecision& d);
  // Currently active attractor position (a bot-looking external avatar).
  [[nodiscard]] std::optional<Vec3> attractor(Seconds now) const;
  AvatarId next_id();

  Land land_;
  std::unique_ptr<MobilityModel> model_;
  PopulationProcess population_;
  Rng rng_;
  std::map<AvatarId, Avatar> avatars_;
  // Previously seen visitors available for re-visits (same identity).
  struct DepartedUser {
    AvatarId id;
    AvatarKind kind;
    int home_poi;
  };
  std::vector<DepartedUser> departed_pool_;
  std::map<AvatarId, Seconds> last_social_activity_;
  std::uint32_t next_id_{1};
  CuriosityParams curiosity_;
  WorldStats stats_;
  std::vector<VisitRecord> visit_log_;
  std::map<AvatarId, std::size_t> open_visits_;  // avatar -> index in visit_log_
};

}  // namespace slmob
