#include "world/avatar.hpp"

namespace slmob {

bool step_kinematics(Avatar& avatar, Seconds dt) {
  if (avatar.state != AvatarState::kTravelling) return false;
  return step_kinematics(avatar.pos, avatar.waypoint, avatar.speed, dt);
}

}  // namespace slmob
