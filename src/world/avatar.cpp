#include "world/avatar.hpp"

namespace slmob {

bool step_kinematics(Avatar& avatar, Seconds dt) {
  if (avatar.state != AvatarState::kTravelling) return false;
  const double dist = avatar.pos.distance_to(avatar.waypoint);
  const double step = avatar.speed * dt;
  if (dist <= step || dist <= 1e-9) {
    avatar.pos = avatar.waypoint;
    return true;
  }
  avatar.pos += avatar.pos.direction_to(avatar.waypoint) * step;
  return false;
}

}  // namespace slmob
