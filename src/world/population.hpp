// Avatar population process: who logs in when, and for how long.
//
// Arrivals are a non-homogeneous Poisson process with a diurnal modulation;
// session durations are log-normal with a hard cap, calibrated so the trace
// reproduces the paper's aggregates (90% of sessions < 1 h, longest ~4 h,
// and each land's unique-visitor and average-concurrency figures).
#pragma once

#include <cstdint>

#include "stats/samplers.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace slmob {

struct PopulationParams {
  // Expected *distinct* visitors over `horizon`.
  double target_unique_users{2000.0};
  Seconds horizon{kSecondsPerDay};
  // Probability that an arrival is a returning visitor (same avatar id as an
  // earlier session) rather than a first-time one. Re-visits are what
  // populate the multi-hour tail of the inter-contact time distribution.
  double revisit_probability{0.3};
  // Session duration distribution.
  double session_median{600.0};
  double session_sigma{1.0};
  Seconds session_cap{4.0 * kSecondsPerHour};
  Seconds session_min{20.0};
  // Explorers (tour-takers) stay longer than the base population; their
  // session draw is scaled by this factor (still subject to session_cap).
  double explorer_session_multiplier{1.0};
  // Diurnal modulation depth in [0, 1): rate(t) = base * (1 + depth *
  // sin(2 pi t / day + phase)). 0 disables modulation.
  double diurnal_depth{0.35};
  double diurnal_phase{0.0};
};

class PopulationProcess {
 public:
  explicit PopulationProcess(PopulationParams params);

  // Number of logins to inject during (now, now+dt]. Draws from `rng`.
  [[nodiscard]] std::size_t arrivals(Seconds now, Seconds dt, Rng& rng) const;

  // Draws one session duration.
  [[nodiscard]] Seconds session_duration(Rng& rng) const;

  // Instantaneous arrival rate (logins per second) at time t.
  [[nodiscard]] double rate(Seconds t) const;

  [[nodiscard]] const PopulationParams& params() const { return params_; }

 private:
  PopulationParams params_;
  LogNormalSampler session_;
  double base_rate_;
};

}  // namespace slmob
