// AvatarStore: structure-of-arrays storage for the live avatar population.
//
// World::tick walks every avatar every simulated second; with std::map
// storage that walk is pointer chasing over ~200-byte nodes. The store keeps
// each hot field (position, waypoint, pause deadline, state) in its own
// contiguous array so the kinematics loop streams through memory, and the
// position array can be handed to SpatialGrid without copying.
//
// Ordering contract: elements are kept sorted by ascending AvatarId — the
// exact iteration order of the std::map this replaces — so every RNG draw in
// World::tick happens in the same sequence and seeded runs stay bit-identical
// across the refactor. Insertion keeps the order (new ids are usually the
// largest, so the common case is an O(1) append); removal compacts without
// reordering.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"
#include "util/vec3.hpp"
#include "world/avatar.hpp"

namespace slmob {

class AvatarStore {
 public:
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }

  // Whole arrays, index-aligned. `positions()` is what SpatialGrid indexes.
  [[nodiscard]] const std::vector<AvatarId>& ids() const { return ids_; }
  [[nodiscard]] const std::vector<Vec3>& positions() const { return pos_; }

  // Per-field accessors (const + mutable); indices are ascending-id order.
  [[nodiscard]] AvatarId id(std::size_t i) const { return ids_[i]; }
  [[nodiscard]] const Vec3& pos(std::size_t i) const { return pos_[i]; }
  [[nodiscard]] Vec3& pos(std::size_t i) { return pos_[i]; }
  [[nodiscard]] const Vec3& waypoint(std::size_t i) const { return waypoint_[i]; }
  [[nodiscard]] Vec3& waypoint(std::size_t i) { return waypoint_[i]; }
  [[nodiscard]] const Vec3& anchor(std::size_t i) const { return anchor_[i]; }
  [[nodiscard]] double speed(std::size_t i) const { return speed_[i]; }
  [[nodiscard]] double& speed(std::size_t i) { return speed_[i]; }
  [[nodiscard]] Seconds pause_until(std::size_t i) const { return pause_until_[i]; }
  [[nodiscard]] Seconds& pause_until(std::size_t i) { return pause_until_[i]; }
  [[nodiscard]] Seconds login_time(std::size_t i) const { return login_time_[i]; }
  [[nodiscard]] Seconds logout_at(std::size_t i) const { return logout_at_[i]; }
  [[nodiscard]] Seconds last_intentional_move(std::size_t i) const { return last_move_[i]; }
  [[nodiscard]] Seconds& last_intentional_move(std::size_t i) { return last_move_[i]; }
  [[nodiscard]] double jitter_radius(std::size_t i) const { return jitter_radius_[i]; }
  [[nodiscard]] double jitter_rate(std::size_t i) const { return jitter_rate_[i]; }
  [[nodiscard]] AvatarState state(std::size_t i) const { return state_[i]; }
  [[nodiscard]] AvatarState& state(std::size_t i) { return state_[i]; }
  [[nodiscard]] AvatarKind kind(std::size_t i) const { return kind_[i]; }
  [[nodiscard]] int home_poi(std::size_t i) const { return home_poi_[i]; }
  [[nodiscard]] bool sitting(std::size_t i) const { return (flags_[i] & kFlagSitting) != 0; }
  [[nodiscard]] bool external(std::size_t i) const { return (flags_[i] & kFlagExternal) != 0; }
  [[nodiscard]] bool debug_pinned(std::size_t i) const {
    return (flags_[i] & kFlagPinned) != 0;
  }
  void set_sitting(std::size_t i, bool sitting) {
    if (sitting) {
      flags_[i] |= kFlagSitting;
    } else {
      flags_[i] &= static_cast<std::uint8_t>(~kFlagSitting);
    }
  }

  // Binary search over the sorted id array.
  [[nodiscard]] std::optional<std::size_t> index_of(AvatarId id) const;
  [[nodiscard]] bool contains(AvatarId id) const { return index_of(id).has_value(); }

  // AoS bridge for the MobilityModel interface and World::find: copies the
  // row out as an Avatar / writes a (same-id) Avatar back.
  [[nodiscard]] Avatar materialize(std::size_t i) const;
  void assign(std::size_t i, const Avatar& avatar);

  // Inserts at the id-sorted position and returns the index. The id must not
  // already be present.
  std::size_t insert(const Avatar& avatar);
  void erase(std::size_t i);

  // Order-preserving bulk removal: removes every index for which pred(i)
  // returns true. pred is called exactly once per element, in ascending
  // index order, before the element is moved — it may read any field of i.
  template <typename Pred>
  void erase_if(Pred&& pred) {
    const std::size_t n = size();
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) continue;
      if (w != i) move_row(i, w);
      ++w;
    }
    if (w != n) resize(w);
  }

 private:
  static constexpr std::uint8_t kFlagSitting = 0x01;
  static constexpr std::uint8_t kFlagExternal = 0x02;
  static constexpr std::uint8_t kFlagPinned = 0x04;

  void move_row(std::size_t from, std::size_t to);
  void resize(std::size_t n);

  std::vector<AvatarId> ids_;
  std::vector<Vec3> pos_;
  std::vector<Vec3> waypoint_;
  std::vector<Vec3> anchor_;
  std::vector<double> speed_;
  std::vector<Seconds> pause_until_;
  std::vector<Seconds> login_time_;
  std::vector<Seconds> logout_at_;
  std::vector<Seconds> last_move_;
  std::vector<double> jitter_radius_;
  std::vector<double> jitter_rate_;
  std::vector<int> current_poi_;
  std::vector<int> home_poi_;
  std::vector<AvatarState> state_;
  std::vector<AvatarKind> kind_;
  std::vector<std::uint8_t> flags_;
};

}  // namespace slmob
