// SimEngine: the discrete-time driver.
//
// Components (the world, the network, servers, clients, sensors, the
// crawler) register tick callbacks with a priority; each engine step calls
// them in ascending priority order with the current virtual time. The
// engine is deliberately dumb — all behaviour lives in the components — so
// any subset can be composed in tests.
#pragma once

#include <functional>
#include <vector>

#include "util/time.hpp"

namespace slmob {

// Conventional priorities; lower runs earlier within a tick.
enum : int {
  kPriorityWorld = 0,     // avatar movement first: ground truth for the tick
  kPriorityServer = 10,   // servers observe the world, emit packets
  kPriorityNetwork = 20,  // network delivers due packets
  kPriorityClient = 30,   // clients consume packets, issue commands
  kPriorityMonitor = 40,  // crawler/sensor bookkeeping, trace sampling
};

class SimEngine {
 public:
  using TickFn = std::function<void(Seconds now, Seconds dt)>;

  explicit SimEngine(Seconds tick_length = 1.0);

  void add(int priority, TickFn fn);

  // Runs ticks until virtual time reaches `until` (exclusive of a partial
  // final tick). Each callback sees `now` = time at the tick start.
  void run_until(Seconds until);
  // Runs exactly n ticks.
  void run_ticks(std::int64_t n);

  [[nodiscard]] Seconds now() const { return static_cast<Seconds>(tick_) * tick_length_; }
  [[nodiscard]] Tick tick() const { return tick_; }
  [[nodiscard]] Seconds tick_length() const { return tick_length_; }

 private:
  void step();
  struct Entry {
    int priority;
    TickFn fn;
  };
  Seconds tick_length_;
  Tick tick_{0};
  std::vector<Entry> entries_;
  bool sorted_{true};
};

}  // namespace slmob
