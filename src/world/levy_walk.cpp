#include "world/levy_walk.hpp"

#include <cmath>

namespace slmob {

LevyWalkModel::LevyWalkModel(LevyWalkParams params)
    : params_(params),
      flight_(params.flight_xm, params.flight_alpha, params.flight_cap),
      pause_(params.pause_xm, params.pause_alpha, params.pause_cap) {}

MobilityDecision LevyWalkModel::next(const Avatar& avatar, const Land& land, Rng& rng) {
  MobilityDecision d;
  const double length = flight_.sample(rng);
  const double theta = rng.uniform(0.0, 6.283185307179586);
  d.waypoint = land.clamp({avatar.pos.x + length * std::cos(theta),
                           avatar.pos.y + length * std::sin(theta), land.ground_z()});
  d.speed = rng.uniform(params_.speed_min, params_.speed_max);
  d.pause = pause_.sample(rng);
  d.jitter_radius = 0.0;
  return d;
}

}  // namespace slmob
