// Random Waypoint: the classical synthetic mobility baseline. Each decision
// picks a uniform point of the land, a uniform speed and a uniform pause.
// Used by the ablation bench to show that RWP does not reproduce the
// paper's hot-spot spatial distribution or two-phase contact times.
#pragma once

#include "world/mobility.hpp"

namespace slmob {

struct RandomWaypointParams {
  double speed_min{1.4};
  double speed_max{3.4};
  Seconds pause_min{0.0};
  Seconds pause_max{120.0};
};

class RandomWaypointModel final : public MobilityModel {
 public:
  explicit RandomWaypointModel(RandomWaypointParams params = {}) : params_(params) {}

  MobilityDecision on_login(const Avatar& avatar, const Land& land, Rng& rng) override {
    return next(avatar, land, rng);
  }
  MobilityDecision next(const Avatar& avatar, const Land& land, Rng& rng) override;

 private:
  RandomWaypointParams params_;
};

}  // namespace slmob
