// MobilityModel: the decision layer above avatar kinematics.
//
// The engine asks the model for a decision whenever a synthetic avatar
// finishes a pause. Three implementations are provided:
//  * PoiGravityModel — the calibrated model reproducing the paper's traces
//    (users revolve around points of interest, travel short distances);
//  * RandomWaypointModel — the classical baseline;
//  * LevyWalkModel — heavy-tailed flights (Rhee et al., cited by the paper).
#pragma once

#include <memory>

#include "util/rng.hpp"
#include "util/time.hpp"
#include "world/avatar.hpp"
#include "world/land.hpp"

namespace slmob {

// What an avatar does next: walk to `waypoint` at `speed`, then pause for
// `pause` seconds; while paused, optionally jitter within `jitter_radius` of
// the waypoint (dancing, browsing a shop, ...).
struct MobilityDecision {
  Vec3 waypoint;
  double speed{1.5};
  Seconds pause{10.0};
  double jitter_radius{0.0};
  // Per-second probability of taking a jitter step while paused. In SL,
  // "dancing" is an animation, not movement — dwelling avatars reposition
  // only occasionally.
  double jitter_rate{0.02};
  int poi_index{-1};  // POI this decision targets, -1 if free-roaming
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  // Called once when the avatar logs in; may adjust kind-specific state.
  // `avatar.pos` is already set to a spawn point.
  virtual MobilityDecision on_login(const Avatar& avatar, const Land& land, Rng& rng) = 0;

  // Called whenever a pause ends.
  virtual MobilityDecision next(const Avatar& avatar, const Land& land, Rng& rng) = 0;

  // Fraction of logins assigned each avatar kind; models may ignore kinds.
  [[nodiscard]] virtual AvatarKind assign_kind(Rng& rng) const {
    (void)rng;
    return AvatarKind::kRegular;
  }
};

}  // namespace slmob
