#include "world/world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/log.hpp"

namespace slmob {

World::World(Land land, std::unique_ptr<MobilityModel> model, PopulationParams population,
             std::uint64_t seed)
    : land_(std::move(land)),
      model_(std::move(model)),
      population_(population),
      rng_(seed) {
  if (!model_) throw std::invalid_argument("World: null mobility model");
  if (land_.spawn_points().empty()) {
    throw std::invalid_argument("World: land has no spawn points");
  }
}

std::optional<Avatar> World::find(AvatarId id) const {
  const auto i = avatars_.index_of(id);
  if (!i) return std::nullopt;
  return avatars_.materialize(*i);
}

AvatarId World::next_id() { return AvatarId{next_id_++}; }

void World::tick(Seconds now, Seconds dt) {
  process_departures(now);
  process_arrivals(now, dt);

  const std::size_t n = avatars_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (avatars_.external(i)) {
      if (avatars_.state(i) == AvatarState::kTravelling) {
        step_kinematics(avatars_.pos(i), avatars_.waypoint(i), avatars_.speed(i), dt);
        if (avatars_.pos(i).distance_to(avatars_.waypoint(i)) < 1e-9) {
          avatars_.state(i) = AvatarState::kPaused;
          avatars_.pause_until(i) = now + 1e18;  // waits for the next steer command
        }
      }
      continue;
    }
    if (avatars_.state(i) == AvatarState::kPaused) {
      if (now >= avatars_.pause_until(i)) {
        decide_at(now, i);
      } else if (avatars_.jitter_radius(i) > 0.0 &&
                 rng_.bernoulli(avatars_.jitter_rate(i) * dt)) {
        // In-POI fidgeting: short step within the jitter disc (dancing,
        // stepping to the bar). Does not end the pause.
        const double r = avatars_.jitter_radius(i) * std::sqrt(rng_.uniform());
        const double theta = rng_.uniform(0.0, 6.283185307179586);
        const Vec3& anchor = avatars_.anchor(i);
        avatars_.waypoint(i) = land_.clamp(
            {anchor.x + r * std::cos(theta), anchor.y + r * std::sin(theta), land_.ground_z()});
        avatars_.state(i) = AvatarState::kTravelling;
      }
    }
    if (avatars_.state(i) == AvatarState::kTravelling) {
      const bool arrived =
          step_kinematics(avatars_.pos(i), avatars_.waypoint(i), avatars_.speed(i), dt);
      if (arrived) {
        avatars_.state(i) = AvatarState::kPaused;
        // Jitter steps keep the existing pause deadline; fresh decisions set
        // pause_until in apply_decision before we get here.
        if (avatars_.pause_until(i) < now) avatars_.pause_until(i) = now;
      }
    }
  }
  touch();
}

void World::process_arrivals(Seconds now, Seconds dt) {
  std::size_t n = population_.arrivals(now, dt, rng_);
  // Flash-crowd boost multiplies the admitted count, not the Poisson rate:
  // the draw above is identical with or without a boost, so the RNG sequence
  // of every unboosted tick — and of entire fault-free runs — is unchanged.
  if (arrival_boost_ > 1.0) {
    n = static_cast<std::size_t>(std::floor(static_cast<double>(n) * arrival_boost_));
  }
  for (std::size_t i = 0; i < n; ++i) admit_arrival(now);
}

void World::admit_arrival(Seconds now) {
  if (avatars_.size() >= land_.capacity()) {
    ++stats_.rejected_logins;
    return;
  }
  Avatar avatar;
  const double p_revisit = population_.params().revisit_probability;
  if (!departed_pool_.empty() && rng_.bernoulli(p_revisit)) {
    // Returning visitor: reuse a departed identity (and their home POI).
    const auto idx = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(departed_pool_.size()) - 1));
    const DepartedUser user = departed_pool_[idx];
    departed_pool_[idx] = departed_pool_.back();
    departed_pool_.pop_back();
    avatar.id = user.id;
    avatar.kind = user.kind;
    avatar.home_poi = user.home_poi;
  } else {
    avatar.id = next_id();
    avatar.kind = model_->assign_kind(rng_);
  }
  const auto& spawns = land_.spawn_points();
  avatar.pos = spawns[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(spawns.size()) - 1))];
  avatar.login_time = now;
  Seconds session = population_.session_duration(rng_);
  if (avatar.kind == AvatarKind::kExplorer) {
    session = std::min(session * population_.params().explorer_session_multiplier,
                       population_.params().session_cap);
  }
  avatar.logout_at = now + session;
  avatar.last_intentional_move = now;

  const MobilityDecision d = model_->on_login(avatar, land_, rng_);
  apply_decision(now, avatar, d);

  ++stats_.total_logins;
  open_visits_[avatar.id] = visit_log_.size();
  visit_log_.push_back({avatar.id, now, -1.0});
  avatars_.insert(avatar);
  touch();
}

void World::process_departures(Seconds now) {
  avatars_.erase_if([&](std::size_t i) {
    if (avatars_.external(i) || now < avatars_.logout_at(i)) return false;
    const AvatarId id = avatars_.id(i);
    if (const auto open = open_visits_.find(id); open != open_visits_.end()) {
      visit_log_[open->second].logout = now;
      open_visits_.erase(open);
    }
    ++stats_.total_logouts;
    if (!avatars_.debug_pinned(i)) {
      departed_pool_.push_back({id, avatars_.kind(i), avatars_.home_poi(i)});
    }
    return true;
  });
  touch();
}

void World::decide_at(Seconds now, std::size_t i) {
  Avatar avatar = avatars_.materialize(i);
  decide(now, avatar);
  avatars_.assign(i, avatar);
}

void World::decide(Seconds now, Avatar& avatar) {
  // Curiosity perturbation: a bot-looking avatar may hijack this decision.
  if (const auto target = attractor(now);
      target && rng_.bernoulli(curiosity_.approach_probability)) {
    ++stats_.curiosity_approaches;
    MobilityDecision d;
    const double r = curiosity_.approach_radius * std::sqrt(rng_.uniform());
    const double theta = rng_.uniform(0.0, 6.283185307179586);
    d.waypoint = land_.clamp(
        {target->x + r * std::cos(theta), target->y + r * std::sin(theta), land_.ground_z()});
    d.speed = 2.0;
    d.pause = rng_.uniform(20.0, 90.0);  // users linger, poke at the bot, leave
    d.jitter_radius = 0.0;
    d.poi_index = -1;
    apply_decision(now, avatar, d);
    return;
  }
  apply_decision(now, avatar, model_->next(avatar, land_, rng_));
}

void World::apply_decision(Seconds now, Avatar& avatar, const MobilityDecision& d) {
  avatar.waypoint = land_.clamp(d.waypoint);
  avatar.speed = std::max(0.1, d.speed);
  avatar.state = AvatarState::kTravelling;
  avatar.pause_until = now + avatar.pos.distance_to(avatar.waypoint) / avatar.speed + d.pause;
  avatar.anchor = avatar.waypoint;
  avatar.jitter_radius = d.jitter_radius;
  avatar.jitter_rate = d.jitter_rate;
  avatar.current_poi = d.poi_index;
  if (avatar.home_poi < 0 && d.poi_index >= 0) avatar.home_poi = d.poi_index;
  avatar.last_intentional_move = now;
}

std::optional<Vec3> World::attractor(Seconds now) const {
  if (!curiosity_.enabled) return std::nullopt;
  for (const AvatarId id : external_ids_) {
    const auto idx = avatars_.index_of(id);
    if (!idx) continue;
    const std::size_t i = *idx;
    const auto social = last_social_activity_.find(id);
    const Seconds last_social =
        social == last_social_activity_.end() ? avatars_.login_time(i) : social->second;
    const Seconds last_activity = std::max(avatars_.last_intentional_move(i), last_social);
    if (now - last_activity > curiosity_.idle_threshold) return avatars_.pos(i);
  }
  return std::nullopt;
}

const std::vector<std::uint32_t>& World::within(const Vec3& pos, double radius) const {
  if (!grid_ || grid_version_ != version_ || grid_radius_ != radius) {
    grid_.emplace(avatars_.positions(), radius);
    grid_version_ = version_;
    grid_radius_ = radius;
  }
  grid_query_.clear();
  grid_->near_point(pos, grid_query_);
  // Grid cells come back in hash order; callers depend on ascending index
  // (= ascending id) order for deterministic iteration.
  std::sort(grid_query_.begin(), grid_query_.end());
  return grid_query_;
}

std::optional<AvatarId> World::add_external_avatar(Seconds now, Vec3 pos) {
  if (avatars_.size() >= land_.capacity()) {
    ++stats_.rejected_logins;
    return std::nullopt;
  }
  Avatar avatar;
  avatar.id = next_id();
  avatar.externally_controlled = true;
  avatar.pos = land_.clamp(pos);
  avatar.state = AvatarState::kPaused;
  avatar.pause_until = now + 1e18;
  avatar.login_time = now;
  avatar.logout_at = now + 1e18;
  avatar.last_intentional_move = now;
  ++stats_.total_logins;
  open_visits_[avatar.id] = visit_log_.size();
  visit_log_.push_back({avatar.id, now, -1.0});
  avatars_.insert(avatar);
  external_ids_.insert(
      std::lower_bound(external_ids_.begin(), external_ids_.end(), avatar.id), avatar.id);
  touch();
  return avatar.id;
}

void World::remove_external_avatar(Seconds now, AvatarId id) {
  const auto idx = avatars_.index_of(id);
  if (!idx || !avatars_.external(*idx)) return;
  if (const auto open = open_visits_.find(id); open != open_visits_.end()) {
    visit_log_[open->second].logout = now;
    open_visits_.erase(open);
  }
  ++stats_.total_logouts;
  last_social_activity_.erase(id);
  avatars_.erase(*idx);
  const auto it = std::lower_bound(external_ids_.begin(), external_ids_.end(), id);
  if (it != external_ids_.end() && *it == id) external_ids_.erase(it);
  touch();
}

void World::steer_external(Seconds now, AvatarId id, Vec3 waypoint, double speed) {
  const auto idx = avatars_.index_of(id);
  if (!idx || !avatars_.external(*idx)) return;
  const std::size_t i = *idx;
  avatars_.waypoint(i) = land_.clamp(waypoint);
  avatars_.speed(i) = std::max(0.1, speed);
  avatars_.state(i) = AvatarState::kTravelling;
  avatars_.last_intentional_move(i) = now;
}

void World::mark_social_activity(Seconds now, AvatarId id) {
  if (avatars_.contains(id)) last_social_activity_[id] = now;
}

void World::set_sitting(AvatarId id, bool sitting) {
  if (const auto idx = avatars_.index_of(id)) avatars_.set_sitting(*idx, sitting);
}

AvatarId World::debug_add_synthetic(Seconds now, Vec3 pos, Seconds logout_at) {
  Avatar avatar;
  avatar.id = next_id();
  avatar.pos = land_.clamp(pos);
  avatar.state = AvatarState::kPaused;
  avatar.pause_until = 1e18;  // debug avatars hold their position
  avatar.debug_pinned = true;
  avatar.login_time = now;
  avatar.logout_at = logout_at;
  avatar.last_intentional_move = now;
  ++stats_.total_logins;
  open_visits_[avatar.id] = visit_log_.size();
  visit_log_.push_back({avatar.id, now, -1.0});
  avatars_.insert(avatar);
  touch();
  return avatar.id;
}

void World::debug_prefill(Seconds now, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) admit_arrival(now);
}

}  // namespace slmob
