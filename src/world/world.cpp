#include "world/world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/log.hpp"

namespace slmob {

World::World(Land land, std::unique_ptr<MobilityModel> model, PopulationParams population,
             std::uint64_t seed)
    : land_(std::move(land)),
      model_(std::move(model)),
      population_(population),
      rng_(seed) {
  if (!model_) throw std::invalid_argument("World: null mobility model");
  if (land_.spawn_points().empty()) {
    throw std::invalid_argument("World: land has no spawn points");
  }
}

const Avatar* World::find(AvatarId id) const {
  const auto it = avatars_.find(id);
  return it == avatars_.end() ? nullptr : &it->second;
}

AvatarId World::next_id() { return AvatarId{next_id_++}; }

void World::tick(Seconds now, Seconds dt) {
  process_departures(now);
  process_arrivals(now, dt);

  for (auto& [id, avatar] : avatars_) {
    if (avatar.externally_controlled) {
      step_kinematics(avatar, dt);
      if (avatar.state == AvatarState::kTravelling &&
          avatar.pos.distance_to(avatar.waypoint) < 1e-9) {
        avatar.state = AvatarState::kPaused;
        avatar.pause_until = now + 1e18;  // waits for the next steer command
      }
      continue;
    }
    if (avatar.state == AvatarState::kPaused) {
      if (now >= avatar.pause_until) {
        decide(now, avatar);
      } else if (avatar.jitter_radius > 0.0 && rng_.bernoulli(avatar.jitter_rate * dt)) {
        // In-POI fidgeting: short step within the jitter disc (dancing,
        // stepping to the bar). Does not end the pause.
        const double r = avatar.jitter_radius * std::sqrt(rng_.uniform());
        const double theta = rng_.uniform(0.0, 6.283185307179586);
        avatar.waypoint = land_.clamp({avatar.anchor.x + r * std::cos(theta),
                                       avatar.anchor.y + r * std::sin(theta),
                                       land_.ground_z()});
        avatar.state = AvatarState::kTravelling;
      }
    }
    if (avatar.state == AvatarState::kTravelling) {
      const bool arrived = step_kinematics(avatar, dt);
      if (arrived) {
        avatar.state = AvatarState::kPaused;
        // Jitter steps keep the existing pause deadline; fresh decisions set
        // pause_until in apply_decision before we get here.
        if (avatar.pause_until < now) avatar.pause_until = now;
      }
    }
  }
}

void World::process_arrivals(Seconds now, Seconds dt) {
  const std::size_t n = population_.arrivals(now, dt, rng_);
  for (std::size_t i = 0; i < n; ++i) {
    if (avatars_.size() >= land_.capacity()) {
      ++stats_.rejected_logins;
      continue;
    }
    Avatar avatar;
    const double p_revisit = population_.params().revisit_probability;
    if (!departed_pool_.empty() && rng_.bernoulli(p_revisit)) {
      // Returning visitor: reuse a departed identity (and their home POI).
      const auto idx = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(departed_pool_.size()) - 1));
      const DepartedUser user = departed_pool_[idx];
      departed_pool_[idx] = departed_pool_.back();
      departed_pool_.pop_back();
      avatar.id = user.id;
      avatar.kind = user.kind;
      avatar.home_poi = user.home_poi;
    } else {
      avatar.id = next_id();
      avatar.kind = model_->assign_kind(rng_);
    }
    const auto& spawns = land_.spawn_points();
    avatar.pos = spawns[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(spawns.size()) - 1))];
    avatar.login_time = now;
    Seconds session = population_.session_duration(rng_);
    if (avatar.kind == AvatarKind::kExplorer) {
      session = std::min(session * population_.params().explorer_session_multiplier,
                         population_.params().session_cap);
    }
    avatar.logout_at = now + session;
    avatar.last_intentional_move = now;

    const MobilityDecision d = model_->on_login(avatar, land_, rng_);
    apply_decision(now, avatar, d);

    ++stats_.total_logins;
    open_visits_[avatar.id] = visit_log_.size();
    visit_log_.push_back({avatar.id, now, -1.0});
    avatars_.emplace(avatar.id, avatar);
  }
}

void World::process_departures(Seconds now) {
  for (auto it = avatars_.begin(); it != avatars_.end();) {
    Avatar& avatar = it->second;
    if (!avatar.externally_controlled && now >= avatar.logout_at) {
      if (const auto open = open_visits_.find(avatar.id); open != open_visits_.end()) {
        visit_log_[open->second].logout = now;
        open_visits_.erase(open);
      }
      ++stats_.total_logouts;
      if (!avatar.debug_pinned) {
        departed_pool_.push_back({avatar.id, avatar.kind, avatar.home_poi});
      }
      it = avatars_.erase(it);
    } else {
      ++it;
    }
  }
}

void World::decide(Seconds now, Avatar& avatar) {
  // Curiosity perturbation: a bot-looking avatar may hijack this decision.
  if (const auto target = attractor(now);
      target && rng_.bernoulli(curiosity_.approach_probability)) {
    ++stats_.curiosity_approaches;
    MobilityDecision d;
    const double r = curiosity_.approach_radius * std::sqrt(rng_.uniform());
    const double theta = rng_.uniform(0.0, 6.283185307179586);
    d.waypoint = land_.clamp(
        {target->x + r * std::cos(theta), target->y + r * std::sin(theta), land_.ground_z()});
    d.speed = 2.0;
    d.pause = rng_.uniform(20.0, 90.0);  // users linger, poke at the bot, leave
    d.jitter_radius = 0.0;
    d.poi_index = -1;
    apply_decision(now, avatar, d);
    return;
  }
  apply_decision(now, avatar, model_->next(avatar, land_, rng_));
}

void World::apply_decision(Seconds now, Avatar& avatar, const MobilityDecision& d) {
  avatar.waypoint = land_.clamp(d.waypoint);
  avatar.speed = std::max(0.1, d.speed);
  avatar.state = AvatarState::kTravelling;
  avatar.pause_until = now + avatar.pos.distance_to(avatar.waypoint) / avatar.speed + d.pause;
  avatar.anchor = avatar.waypoint;
  avatar.jitter_radius = d.jitter_radius;
  avatar.jitter_rate = d.jitter_rate;
  avatar.current_poi = d.poi_index;
  if (avatar.home_poi < 0 && d.poi_index >= 0) avatar.home_poi = d.poi_index;
  avatar.last_intentional_move = now;
}

std::optional<Vec3> World::attractor(Seconds now) const {
  if (!curiosity_.enabled) return std::nullopt;
  for (const auto& [id, avatar] : avatars_) {
    if (!avatar.externally_controlled) continue;
    const auto social = last_social_activity_.find(id);
    const Seconds last_social =
        social == last_social_activity_.end() ? avatar.login_time : social->second;
    const Seconds last_activity = std::max(avatar.last_intentional_move, last_social);
    if (now - last_activity > curiosity_.idle_threshold) return avatar.pos;
  }
  return std::nullopt;
}

std::optional<AvatarId> World::add_external_avatar(Seconds now, Vec3 pos) {
  if (avatars_.size() >= land_.capacity()) {
    ++stats_.rejected_logins;
    return std::nullopt;
  }
  Avatar avatar;
  avatar.id = next_id();
  avatar.externally_controlled = true;
  avatar.pos = land_.clamp(pos);
  avatar.state = AvatarState::kPaused;
  avatar.pause_until = now + 1e18;
  avatar.login_time = now;
  avatar.logout_at = now + 1e18;
  avatar.last_intentional_move = now;
  ++stats_.total_logins;
  open_visits_[avatar.id] = visit_log_.size();
  visit_log_.push_back({avatar.id, now, -1.0});
  avatars_.emplace(avatar.id, avatar);
  return avatar.id;
}

void World::remove_external_avatar(Seconds now, AvatarId id) {
  const auto it = avatars_.find(id);
  if (it == avatars_.end() || !it->second.externally_controlled) return;
  if (const auto open = open_visits_.find(id); open != open_visits_.end()) {
    visit_log_[open->second].logout = now;
    open_visits_.erase(open);
  }
  ++stats_.total_logouts;
  last_social_activity_.erase(id);
  avatars_.erase(it);
}

void World::steer_external(Seconds now, AvatarId id, Vec3 waypoint, double speed) {
  const auto it = avatars_.find(id);
  if (it == avatars_.end() || !it->second.externally_controlled) return;
  Avatar& avatar = it->second;
  avatar.waypoint = land_.clamp(waypoint);
  avatar.speed = std::max(0.1, speed);
  avatar.state = AvatarState::kTravelling;
  avatar.last_intentional_move = now;
}

void World::mark_social_activity(Seconds now, AvatarId id) {
  if (avatars_.contains(id)) last_social_activity_[id] = now;
}

void World::set_sitting(AvatarId id, bool sitting) {
  const auto it = avatars_.find(id);
  if (it != avatars_.end()) it->second.sitting = sitting;
}

AvatarId World::debug_add_synthetic(Seconds now, Vec3 pos, Seconds logout_at) {
  Avatar avatar;
  avatar.id = next_id();
  avatar.pos = land_.clamp(pos);
  avatar.state = AvatarState::kPaused;
  avatar.pause_until = 1e18;  // debug avatars hold their position
  avatar.debug_pinned = true;
  avatar.login_time = now;
  avatar.logout_at = logout_at;
  avatar.last_intentional_move = now;
  ++stats_.total_logins;
  open_visits_[avatar.id] = visit_log_.size();
  visit_log_.push_back({avatar.id, now, -1.0});
  avatars_.emplace(avatar.id, avatar);
  return avatar.id;
}

}  // namespace slmob
