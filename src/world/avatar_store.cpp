#include "world/avatar_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace slmob {

std::optional<std::size_t> AvatarStore::index_of(AvatarId id) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return std::nullopt;
  return static_cast<std::size_t>(it - ids_.begin());
}

Avatar AvatarStore::materialize(std::size_t i) const {
  Avatar a;
  a.id = ids_[i];
  a.pos = pos_[i];
  a.state = state_[i];
  a.kind = kind_[i];
  a.waypoint = waypoint_[i];
  a.speed = speed_[i];
  a.pause_until = pause_until_[i];
  a.login_time = login_time_[i];
  a.logout_at = logout_at_[i];
  a.anchor = anchor_[i];
  a.jitter_radius = jitter_radius_[i];
  a.jitter_rate = jitter_rate_[i];
  a.current_poi = current_poi_[i];
  a.home_poi = home_poi_[i];
  a.sitting = sitting(i);
  a.externally_controlled = external(i);
  a.debug_pinned = debug_pinned(i);
  a.last_intentional_move = last_move_[i];
  return a;
}

void AvatarStore::assign(std::size_t i, const Avatar& a) {
  pos_[i] = a.pos;
  state_[i] = a.state;
  kind_[i] = a.kind;
  waypoint_[i] = a.waypoint;
  speed_[i] = a.speed;
  pause_until_[i] = a.pause_until;
  login_time_[i] = a.login_time;
  logout_at_[i] = a.logout_at;
  anchor_[i] = a.anchor;
  jitter_radius_[i] = a.jitter_radius;
  jitter_rate_[i] = a.jitter_rate;
  current_poi_[i] = a.current_poi;
  home_poi_[i] = a.home_poi;
  flags_[i] = static_cast<std::uint8_t>((a.sitting ? kFlagSitting : 0) |
                                        (a.externally_controlled ? kFlagExternal : 0) |
                                        (a.debug_pinned ? kFlagPinned : 0));
  last_move_[i] = a.last_intentional_move;
}

std::size_t AvatarStore::insert(const Avatar& a) {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), a.id);
  if (it != ids_.end() && *it == a.id) {
    throw std::logic_error("AvatarStore::insert: duplicate avatar id");
  }
  const auto i = static_cast<std::size_t>(it - ids_.begin());
  ids_.insert(it, a.id);
  pos_.insert(pos_.begin() + static_cast<std::ptrdiff_t>(i), Vec3{});
  waypoint_.insert(waypoint_.begin() + static_cast<std::ptrdiff_t>(i), Vec3{});
  anchor_.insert(anchor_.begin() + static_cast<std::ptrdiff_t>(i), Vec3{});
  speed_.insert(speed_.begin() + static_cast<std::ptrdiff_t>(i), 0.0);
  pause_until_.insert(pause_until_.begin() + static_cast<std::ptrdiff_t>(i), 0.0);
  login_time_.insert(login_time_.begin() + static_cast<std::ptrdiff_t>(i), 0.0);
  logout_at_.insert(logout_at_.begin() + static_cast<std::ptrdiff_t>(i), 0.0);
  last_move_.insert(last_move_.begin() + static_cast<std::ptrdiff_t>(i), 0.0);
  jitter_radius_.insert(jitter_radius_.begin() + static_cast<std::ptrdiff_t>(i), 0.0);
  jitter_rate_.insert(jitter_rate_.begin() + static_cast<std::ptrdiff_t>(i), 0.0);
  current_poi_.insert(current_poi_.begin() + static_cast<std::ptrdiff_t>(i), -1);
  home_poi_.insert(home_poi_.begin() + static_cast<std::ptrdiff_t>(i), -1);
  state_.insert(state_.begin() + static_cast<std::ptrdiff_t>(i), AvatarState::kPaused);
  kind_.insert(kind_.begin() + static_cast<std::ptrdiff_t>(i), AvatarKind::kRegular);
  flags_.insert(flags_.begin() + static_cast<std::ptrdiff_t>(i), 0);
  assign(i, a);
  return i;
}

void AvatarStore::erase(std::size_t i) {
  const auto d = static_cast<std::ptrdiff_t>(i);
  ids_.erase(ids_.begin() + d);
  pos_.erase(pos_.begin() + d);
  waypoint_.erase(waypoint_.begin() + d);
  anchor_.erase(anchor_.begin() + d);
  speed_.erase(speed_.begin() + d);
  pause_until_.erase(pause_until_.begin() + d);
  login_time_.erase(login_time_.begin() + d);
  logout_at_.erase(logout_at_.begin() + d);
  last_move_.erase(last_move_.begin() + d);
  jitter_radius_.erase(jitter_radius_.begin() + d);
  jitter_rate_.erase(jitter_rate_.begin() + d);
  current_poi_.erase(current_poi_.begin() + d);
  home_poi_.erase(home_poi_.begin() + d);
  state_.erase(state_.begin() + d);
  kind_.erase(kind_.begin() + d);
  flags_.erase(flags_.begin() + d);
}

void AvatarStore::move_row(std::size_t from, std::size_t to) {
  ids_[to] = ids_[from];
  pos_[to] = pos_[from];
  waypoint_[to] = waypoint_[from];
  anchor_[to] = anchor_[from];
  speed_[to] = speed_[from];
  pause_until_[to] = pause_until_[from];
  login_time_[to] = login_time_[from];
  logout_at_[to] = logout_at_[from];
  last_move_[to] = last_move_[from];
  jitter_radius_[to] = jitter_radius_[from];
  jitter_rate_[to] = jitter_rate_[from];
  current_poi_[to] = current_poi_[from];
  home_poi_[to] = home_poi_[from];
  state_[to] = state_[from];
  kind_[to] = kind_[from];
  flags_[to] = flags_[from];
}

void AvatarStore::resize(std::size_t n) {
  ids_.resize(n);
  pos_.resize(n);
  waypoint_.resize(n);
  anchor_.resize(n);
  speed_.resize(n);
  pause_until_.resize(n);
  login_time_.resize(n);
  logout_at_.resize(n);
  last_move_.resize(n);
  jitter_radius_.resize(n);
  jitter_rate_.resize(n);
  current_poi_.resize(n);
  home_poi_.resize(n);
  state_.resize(n);
  kind_.resize(n);
  flags_.resize(n);
}

}  // namespace slmob
