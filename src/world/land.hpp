// A land (a.k.a. island, region): the 256 x 256 m unit of the metaverse the
// paper monitors. A land carries points of interest (POIs) that drive the
// POI-gravity mobility model, spawn points where avatars appear, and the
// region policy knobs the paper mentions (capacity, object permissions).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "util/vec3.hpp"

namespace slmob {

// Default region edge length in metres (Second Life convention).
constexpr double kDefaultLandSize = 256.0;

// A point of interest: a disc that attracts avatars.
struct Poi {
  std::string name;
  Vec3 center;
  double radius{8.0};   // avatars dwell within this disc
  double weight{1.0};   // relative popularity (normalised by the model)
};

// Region policies for in-world objects, modelling the restrictions §2 of the
// paper describes (private lands forbid object deployment; on public lands
// objects expire).
enum class LandAccess {
  kPublic,    // objects allowed but expire after object_lifetime
  kPrivate,   // object deployment forbidden without authorisation
  kSandbox,   // objects allowed, expire aggressively
};

class Land {
 public:
  Land(std::string name, double size = kDefaultLandSize);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double size() const { return size_; }

  void add_poi(Poi poi);
  [[nodiscard]] const std::vector<Poi>& pois() const { return pois_; }

  void add_spawn_point(Vec3 p);
  [[nodiscard]] const std::vector<Vec3>& spawn_points() const { return spawn_points_; }

  void set_access(LandAccess access) { access_ = access; }
  [[nodiscard]] LandAccess access() const { return access_; }

  // Lifetime of a deployed object on public/sandbox land, in seconds.
  void set_object_lifetime(double seconds) { object_lifetime_ = seconds; }
  [[nodiscard]] double object_lifetime() const { return object_lifetime_; }

  // Maximum concurrent avatars (the paper: "roughly 100 users per land").
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // Ground altitude; avatars move on this plane.
  [[nodiscard]] double ground_z() const { return ground_z_; }
  void set_ground_z(double z) { ground_z_ = z; }

  // Clamps a point into the land's [0, size) x [0, size) square (z forced to
  // ground level). Positions must never leave the region.
  [[nodiscard]] Vec3 clamp(Vec3 p) const;
  [[nodiscard]] bool contains(const Vec3& p) const;

 private:
  std::string name_;
  double size_;
  double ground_z_{22.0};
  std::vector<Poi> pois_;
  std::vector<Vec3> spawn_points_;
  LandAccess access_{LandAccess::kPublic};
  double object_lifetime_{3600.0};
  std::size_t capacity_{100};
};

}  // namespace slmob
