#include "world/archetypes.hpp"

#include <stdexcept>

namespace slmob {

std::string archetype_name(LandArchetype archetype) {
  switch (archetype) {
    case LandArchetype::kApfelLand:
      return "Apfelland";
    case LandArchetype::kDanceIsland:
      return "Dance";
    case LandArchetype::kIsleOfView:
      return "Isle Of View";
  }
  throw std::invalid_argument("archetype_name: unknown archetype");
}

Land make_land(LandArchetype archetype) {
  switch (archetype) {
    case LandArchetype::kApfelLand: {
      // Out-door arena for newbies: sandbox stations, info kiosks and
      // freebie shops spread across the whole region. Sparse by design.
      Land land("Apfelland");
      land.set_access(LandAccess::kPublic);
      land.set_object_lifetime(3600.0);
      const struct {
        double x, y, r, w;
      } pois[] = {
          {40, 40, 9, 2.0},    {128, 30, 8, 0.9},   {216, 44, 9, 0.85},
          {32, 128, 8, 0.8},   {120, 120, 10, 2.4}, {210, 130, 8, 0.8},
          {48, 210, 8, 0.75},  {140, 216, 9, 1.8},  {224, 220, 8, 0.7},
          {80, 80, 7, 0.6},    {176, 176, 7, 0.6},  {72, 176, 7, 0.5},
          {184, 72, 7, 0.5},   {128, 176, 7, 0.55},
      };
      for (const auto& p : pois) {
        land.add_poi({"station", {p.x, p.y, land.ground_z()}, p.r, p.w});
      }
      land.add_spawn_point({16.0, 128.0, land.ground_z()});
      land.add_spawn_point({128.0, 16.0, land.ground_z()});
      land.add_spawn_point({240.0, 128.0, land.ground_z()});
      land.add_spawn_point({128.0, 240.0, land.ground_z()});
      return land;
    }
    case LandArchetype::kDanceIsland: {
      // In-door discotheque: nearly everyone is on the dance floor or at
      // the bar. The two hot-spots are > 80 m apart, so even the WiFi range
      // cannot bridge them — which is what makes the paper's ICT similar at
      // both radii.
      Land land("Dance");
      land.set_access(LandAccess::kPrivate);
      land.add_poi({"dance floor", {150.0, 150.0, land.ground_z()}, 8.0, 0.72});
      land.add_poi({"bar", {78.0, 168.0, land.ground_z()}, 6.0, 0.20});
      land.add_poi({"chill lounge", {92.0, 92.0, land.ground_z()}, 8.0, 0.08});
      land.add_spawn_point({196.0, 76.0, land.ground_z()});  // teleport landing
      return land;
    }
    case LandArchetype::kIsleOfView: {
      // St. Valentine's event: a stage with a dense crowd, themed booths
      // along a path, photo spots. Crowded everywhere near the event.
      Land land("Isle Of View");
      land.set_access(LandAccess::kPublic);
      land.set_object_lifetime(1800.0);
      land.add_poi({"event stage", {128.0, 140.0, land.ground_z()}, 24.0, 1.6});
      land.add_poi({"kissing booth", {62.0, 110.0, land.ground_z()}, 10.0, 0.5});
      land.add_poi({"photo spot", {194.0, 110.0, land.ground_z()}, 10.0, 0.45});
      land.add_poi({"gift shop", {100.0, 208.0, land.ground_z()}, 12.0, 0.4});
      land.add_poi({"rose garden", {190.0, 190.0, land.ground_z()}, 14.0, 0.35});
      land.add_spawn_point({128.0, 36.0, land.ground_z()});
      land.add_spawn_point({36.0, 128.0, land.ground_z()});
      return land;
    }
  }
  throw std::invalid_argument("make_land: unknown archetype");
}

PopulationParams make_population(LandArchetype archetype) {
  // Session medians/sigmas are solved from Little's law against the paper's
  // unique-visitor and average-concurrency figures (DESIGN.md §5):
  // avg_concurrent = (unique / day) * mean_session, mean = median*exp(s^2/2).
  PopulationParams p;
  p.horizon = kSecondsPerDay;
  switch (archetype) {
    case LandArchetype::kApfelLand:
      p.target_unique_users = 1568.0;
      p.revisit_probability = 0.35;
      p.session_median = 282.0;  // 434 * (1 - p_revisit): Little's law
      p.session_sigma = 1.0;
      p.diurnal_depth = 0.35;
      return p;
    case LandArchetype::kDanceIsland:
      p.target_unique_users = 3347.0;
      p.revisit_probability = 0.45;
      p.session_median = 263.0;  // 479 * (1 - p_revisit)
      p.session_sigma = 1.1;
      p.diurnal_depth = 0.40;
      return p;
    case LandArchetype::kIsleOfView:
      // Event visitors stay much longer (mean ~35 min).
      p.target_unique_users = 2656.0;
      p.revisit_probability = 0.45;
      p.session_median = 1026.0;  // 1866 * (1 - p_revisit)
      p.explorer_session_multiplier = 2.2;
      p.session_sigma = 0.5;
      p.diurnal_depth = 0.30;
      return p;
  }
  throw std::invalid_argument("make_population: unknown archetype");
}

PoiGravityParams make_mobility_params(LandArchetype archetype) {
  PoiGravityParams m;
  switch (archetype) {
    case LandArchetype::kApfelLand:
      // Newbies wander between many stations; encounters are mostly
      // transient, hence a higher switch rate and shorter pauses.
      m.p_switch_poi = 0.18;
      m.p_return_home = 0.40;
      m.pause_xm = 40.0;
      m.pause_alpha = 1.15;
      m.pause_cap = 1200.0;
      m.jitter_rate = 0.002;
      m.idler_fraction = 0.12;
      m.explorer_fraction = 0.12;  // a chunk of the arena population roams
      m.p_explore_far = 0.70;
      m.explorer_pause_cap = 150.0;
      m.p_login_wander = 0.30;
      m.speed_min = 1.0;  // newbies walk, they don't run
      m.speed_max = 2.2;
      return m;
    case LandArchetype::kDanceIsland:
      // Dancers hold the floor for long stretches; switching to the bar is
      // rare, which stretches inter-contact times.
      m.p_switch_poi = 0.16;
      m.p_return_home = 0.60;
      m.pause_xm = 120.0;
      m.pause_alpha = 1.1;
      m.pause_cap = 2400.0;
      m.jitter_scale = 0.30;
      m.jitter_rate = 0.0005;
      m.dwell_step_scale = 0.08;
      m.idler_fraction = 0.06;
      m.explorer_fraction = 0.005;
      return m;
    case LandArchetype::kIsleOfView:
      // Event crowd drifts between the stage and the booths; a small
      // explorer population roams the whole island (the >2 km travellers).
      m.p_switch_poi = 0.13;
      m.p_return_home = 0.50;
      m.pause_xm = 45.0;
      m.pause_alpha = 1.2;
      m.pause_cap = 1800.0;
      m.jitter_rate = 0.002;
      m.dwell_step_scale = 0.12;
      m.idler_fraction = 0.08;
      m.explorer_fraction = 0.04;
      m.p_explore_far = 0.6;
      return m;
  }
  throw std::invalid_argument("make_mobility_params: unknown archetype");
}

std::unique_ptr<World> make_world(LandArchetype archetype, std::uint64_t seed) {
  Land land = make_land(archetype);
  auto model = std::make_unique<PoiGravityModel>(land, make_mobility_params(archetype));
  return std::make_unique<World>(std::move(land), std::move(model),
                                 make_population(archetype), seed);
}

}  // namespace slmob
