#include "client/metaverse_client.hpp"

#include "util/log.hpp"

namespace slmob {

MetaverseClient::MetaverseClient(SimNetwork& network, NodeId server,
                                 std::string first_name, std::string last_name)
    : network_(network),
      server_(server),
      first_name_(std::move(first_name)),
      last_name_(std::move(last_name)) {
  address_ = network_.register_node(
      [this](NodeId from, std::span<const std::uint8_t> bytes) {
        if (from == server_) circuit_->on_datagram(bytes);
      });
  circuit_ = std::make_unique<CircuitEndpoint>(network_, address_, server_);
  circuit_->set_deliver([this](Message& msg) { on_message(msg); });
  circuit_->set_on_failure([this] { set_state(ClientState::kKicked); });
}

void MetaverseClient::set_state(ClientState s) {
  if (state_ == s) return;
  state_ = s;
  if (callbacks_.on_state_change) callbacks_.on_state_change(s);
}

void MetaverseClient::login() {
  if (state_ == ClientState::kConnected || state_ == ClientState::kLoggingIn) return;
  // Reconnects always use a fresh circuit with a new initial sequence
  // number: a stale server-side session would otherwise drop retried
  // logins as duplicates of the previous circuit's packets.
  if (++login_attempts_ > 1 || circuit_->failed()) {
    const std::uint32_t isn =
        (0x9e3779b9u * (address_ + 77u * login_attempts_)) % 1000000000u + 1u;
    retired_stats_ += circuit_->stats();
    circuit_ = std::make_unique<CircuitEndpoint>(network_, address_, server_,
                                                 CircuitParams{}, isn);
    circuit_->set_deliver([this](Message& msg) { on_message(msg); });
    circuit_->set_on_failure([this] { set_state(ClientState::kKicked); });
  }
  login_started_ = now_;
  // Derive a deterministic circuit code from the client address; real
  // clients got one from the login XML-RPC server.
  circuit_code_ = 0x5000 + address_;
  LoginRequest req;
  req.first_name = first_name_;
  req.last_name = last_name_;
  req.password_hash = 0xfeedfacecafebeefULL;
  req.circuit_code = circuit_code_;
  circuit_->send(req, /*reliable=*/true);
  set_state(ClientState::kLoggingIn);
}

void MetaverseClient::force_disconnect() { set_state(ClientState::kDropped); }

void MetaverseClient::logout() {
  if (!connected()) return;
  LogoutRequest req;
  req.agent_id = agent_id_;
  circuit_->send(req, /*reliable=*/true);
  set_state(ClientState::kDisconnected);
}

void MetaverseClient::move_to(const Vec3& target, double speed) {
  if (!connected()) return;
  AgentUpdate update;
  update.agent_id = agent_id_;
  update.target_x = static_cast<float>(target.x);
  update.target_y = static_cast<float>(target.y);
  update.target_z = static_cast<float>(target.z);
  update.speed = static_cast<float>(speed);
  circuit_->send(update, /*reliable=*/false);
}

void MetaverseClient::sit() {
  if (!connected()) return;
  AgentUpdate update;
  update.agent_id = agent_id_;
  update.flags = kAgentFlagSit;
  circuit_->send(update, /*reliable=*/false);
}

void MetaverseClient::stand() {
  if (!connected()) return;
  AgentUpdate update;
  update.agent_id = agent_id_;
  update.flags = kAgentFlagStand;
  circuit_->send(update, /*reliable=*/false);
}

void MetaverseClient::say(const std::string& text) {
  if (!connected()) return;
  ChatFromViewer chat;
  chat.agent_id = agent_id_;
  chat.message = text;
  chat.channel = 0;
  circuit_->send(chat, /*reliable=*/false);
}

void MetaverseClient::on_message(Message& msg) {
  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginResponse>) {
          if (!m.ok) {
            log_info("client", "login refused: " + m.error);
            set_state(ClientState::kLoginFailed);
            return;
          }
          agent_id_ = m.agent_id;
          region_name_ = m.region_name;
          spawn_ = {m.spawn_x, m.spawn_y, m.spawn_z};
          UseCircuitCode ucc;
          ucc.circuit_code = circuit_code_;
          ucc.agent_id = agent_id_;
          circuit_->send(ucc, /*reliable=*/true);
          CompleteAgentMovement cam;
          cam.agent_id = agent_id_;
          circuit_->send(cam, /*reliable=*/true);
          set_state(ClientState::kConnected);
        } else if constexpr (std::is_same_v<T, RegionHandshake>) {
          region_name_ = m.region_name;
        } else if constexpr (std::is_same_v<T, CoarseLocationUpdate>) {
          if (callbacks_.on_coarse) callbacks_.on_coarse(now_, m);
        } else if constexpr (std::is_same_v<T, ChatFromSimulator>) {
          if (callbacks_.on_chat) callbacks_.on_chat(m);
        } else if constexpr (std::is_same_v<T, KickUser>) {
          set_state(ClientState::kKicked);
        } else {
          log_warn("client", "unexpected message type from server");
        }
      },
      msg);
}

void MetaverseClient::tick(Seconds now, Seconds dt) {
  (void)dt;
  now_ = now;
  circuit_->tick(now);
  // Login watchdog: a handshake that stalls (e.g. the server holds a stale
  // session that eats our packets) is abandoned and retried by the caller.
  if (state_ == ClientState::kLoggingIn && now - login_started_ > 30.0) {
    set_state(ClientState::kLoginFailed);
  }
  // Keepalive: real viewers stream AgentUpdates continuously; we send a
  // no-op update often enough that the server's session timeout never
  // trips on an idle client.
  if (connected() && (!last_keepalive_ || now - *last_keepalive_ >= 10.0)) {
    last_keepalive_ = now;
    AgentUpdate update;
    update.agent_id = agent_id_;
    update.speed = 0.0f;  // no movement command, just liveness
    circuit_->send(update, /*reliable=*/false);
  }
}

}  // namespace slmob
