// MetaverseClient: a stripped-down client library in the spirit of
// libsecondlife — just enough protocol to log in as a normal user, move,
// chat, and consume the minimap (coarse location) feed. The crawler is a
// thin application on top of this class.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/circuit.hpp"
#include "net/messages.hpp"
#include "net/network.hpp"
#include "util/time.hpp"
#include "util/vec3.hpp"

namespace slmob {

enum class ClientState {
  kDisconnected,
  kLoggingIn,    // LoginRequest sent
  kConnected,    // LoginResponse ok + CompleteAgentMovement sent
  kLoginFailed,  // server refused (e.g. region full)
  kKicked,       // server-side drop: circuit failure or KickUser
  kDropped,      // client-side drop: force_disconnect() (e.g. silent feed)
};

struct ClientCallbacks {
  // Fired for every CoarseLocationUpdate received (the raw minimap feed).
  std::function<void(Seconds now, const CoarseLocationUpdate&)> on_coarse;
  std::function<void(const ChatFromSimulator&)> on_chat;
  std::function<void(ClientState)> on_state_change;
};

class MetaverseClient {
 public:
  MetaverseClient(SimNetwork& network, NodeId server, std::string first_name,
                  std::string last_name);

  // Begins the login handshake; completion is observed via state().
  void login();
  void logout();
  // Drops the connection client-side (e.g. the application noticed the
  // server feed went silent); login() can then reconnect. Enters kDropped —
  // distinct from kKicked so stats and callbacks can tell a self-inflicted
  // drop from a server kick.
  void force_disconnect();

  // Movement command: walk toward `target` at `speed` m/s.
  void move_to(const Vec3& target, double speed);
  void sit();
  void stand();
  // Says `text` on the local chat channel.
  void say(const std::string& text);

  void set_callbacks(ClientCallbacks callbacks) { callbacks_ = std::move(callbacks); }

  // Engine hook (kPriorityClient).
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] ClientState state() const { return state_; }
  [[nodiscard]] bool connected() const { return state_ == ClientState::kConnected; }
  [[nodiscard]] std::uint32_t agent_id() const { return agent_id_; }
  [[nodiscard]] const std::string& region_name() const { return region_name_; }
  [[nodiscard]] Vec3 spawn_position() const { return spawn_; }
  [[nodiscard]] NodeId address() const { return address_; }
  [[nodiscard]] const CircuitStats& circuit_stats() const { return circuit_->stats(); }
  // Smoothed RTT of the current circuit (negative until the first sample);
  // the crawler's overload ladder reads this as a congestion signal.
  [[nodiscard]] Seconds circuit_srtt() const { return circuit_->srtt(); }
  [[nodiscard]] Seconds circuit_last_rtt_at() const { return circuit_->last_rtt_sample_at(); }
  // Transport stats summed over every circuit this client has used: each
  // relogin retires the old endpoint, so circuit_stats() alone only covers
  // the current connection.
  [[nodiscard]] CircuitStats total_circuit_stats() const {
    CircuitStats total = retired_stats_;
    total += circuit_->stats();
    return total;
  }

 private:
  void on_message(Message& msg);
  void set_state(ClientState s);

  SimNetwork& network_;
  NodeId server_;
  NodeId address_;
  std::string first_name_;
  std::string last_name_;
  std::unique_ptr<CircuitEndpoint> circuit_;
  ClientState state_{ClientState::kDisconnected};
  std::uint32_t agent_id_{0};
  std::uint32_t circuit_code_{0};
  std::string region_name_;
  Vec3 spawn_;
  Seconds now_{0.0};
  // Time of the last keepalive AgentUpdate; empty until the first one.
  std::optional<Seconds> last_keepalive_;
  Seconds login_started_{0.0};
  std::uint32_t login_attempts_{0};
  // Stats of circuits retired by reconnects, folded into total_circuit_stats.
  CircuitStats retired_stats_;
  ClientCallbacks callbacks_;
};

}  // namespace slmob
