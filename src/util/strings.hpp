// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace slmob {

// Splits `input` on `delim`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> split(std::string_view input, char delim);

// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view input);

bool starts_with(std::string_view text, std::string_view prefix);

// Case-insensitive ASCII comparison (for HTTP header names).
bool iequals(std::string_view a, std::string_view b);

// Parses a non-negative integer; returns -1 on malformed input.
long long parse_non_negative_int(std::string_view text);

}  // namespace slmob
