// Fixed-size worker pool with deterministic parallel-for/map helpers.
//
// The analysis pipeline fans independent work (per-range contact extraction,
// per-snapshot graph metrics, multi-seed experiment sweeps) across a pool of
// worker threads. Two properties matter more than raw throughput:
//
//  * Determinism: parallel_map writes result i to slot i, and parallel_for
//    hands out indices in order, so outputs are bit-identical for any
//    concurrency (1 worker, 8 workers, or the caller alone).
//  * Nestability: a task running on a pool worker may itself call
//    parallel_for on the same pool. The calling thread always participates
//    in draining its own work items, so a saturated pool cannot deadlock —
//    helper tasks that never get scheduled are harmless no-ops.
//
// Concurrency is the total number of threads doing work during a
// parallel_for, *including* the caller: ThreadPool(1) spawns no workers and
// runs everything sequentially on the calling thread; ThreadPool(4) spawns
// 3 workers. ThreadPool(0) uses default_concurrency(), which honours the
// SLMOB_THREADS environment variable and falls back to
// std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace slmob {

class ThreadPool {
 public:
  // `concurrency` counts the caller: n means n-1 background workers. 0 means
  // default_concurrency().
  explicit ThreadPool(std::size_t concurrency = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency during a parallel_for (workers + caller), >= 1.
  [[nodiscard]] std::size_t concurrency() const { return workers_.size() + 1; }

  // SLMOB_THREADS if set to a positive integer — clamped to
  // hardware_concurrency() so a stale env var cannot oversubscribe the
  // machine — else hardware_concurrency() (>= 1). An explicit
  // ThreadPool(n) is never clamped.
  static std::size_t default_concurrency();

  // Enqueues a task for a worker. With concurrency 1 (no workers) the task
  // runs inline. Prefer parallel_for / parallel_map for fan-out work.
  void submit(std::function<void()> task);

 private:
  template <typename Fn>
  friend void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn);

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_{false};
};

namespace detail {

// Shared state of one parallel_for. Kept alive by shared_ptr because helper
// tasks may be scheduled after the caller has already drained all work.
struct ParallelForState {
  explicit ParallelForState(std::size_t total) : n(total) {}
  const std::size_t n;
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t running_helpers{0};  // guarded by mutex
  std::exception_ptr error;        // guarded by mutex; first error wins
};

}  // namespace detail

// Calls fn(i) exactly once for every i in [0, n). Blocks until all calls have
// completed. The caller participates in the work, so nesting on the same pool
// is safe. The first exception thrown by fn cancels remaining indices and is
// rethrown here.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  // With no workers (or a single item) the caller drains everything alone;
  // skip the shared-state allocation and synchronisation. The streaming
  // engine calls parallel_for once per snapshot, so the constant matters.
  if (pool.concurrency() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<detail::ParallelForState>(n);
  const auto drain = [state, &fn]() {
    for (std::size_t i = state->next.fetch_add(1); i < state->n;
         i = state->next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
        state->next.store(state->n);  // cancel indices not yet claimed
      }
    }
  };

  // One helper per worker, capped by the number of work items. Each helper
  // registers before claiming indices, so once the caller sees
  // running_helpers == 0 after its own drain, no fn call is still in flight.
  const std::size_t helpers =
      std::min(pool.concurrency() - 1, n > 1 ? n - 1 : std::size_t{0});
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([state, drain]() {
      {
        const std::lock_guard<std::mutex> lock(state->mutex);
        ++state->running_helpers;
      }
      drain();
      {
        const std::lock_guard<std::mutex> lock(state->mutex);
        --state->running_helpers;
      }
      state->cv.notify_all();
    });
  }

  drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] { return state->running_helpers == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

// Maps [0, n) through fn into a vector with results in index order,
// independent of scheduling. T must be default-constructible and movable.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace slmob
