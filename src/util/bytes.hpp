// Byte-buffer writer/reader used by the wire protocol and the binary trace
// format. Integers are encoded little-endian, matching the historical
// Second Life UDP protocol that libsecondlife spoke.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace slmob {

// Thrown by ByteReader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`,
// computed slice-by-8 (eight table lookups per eight input bytes).
// Used to frame journal records and checkpoint files so a torn or
// bit-flipped tail is detected instead of decoded as garbage.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  // Length-prefixed (u16) string; throws std::length_error beyond 65535 bytes.
  void str(std::string_view s);
  void raw(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  // Drops the contents but keeps the capacity, so a writer reused across
  // packets stops allocating once it has seen the largest one.
  void clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();
  std::string str();
  // Reads exactly n raw bytes.
  std::vector<std::uint8_t> raw(std::size_t n);
  // Consumes and returns a view of everything left, without copying. The
  // span aliases the reader's input buffer.
  std::span<const std::uint8_t> rest() {
    const auto s = data_.subspan(pos_);
    pos_ = data_.size();
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

}  // namespace slmob
