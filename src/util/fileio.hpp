// Atomic file writes.
//
// Result files (traces, reports, benchmark JSON) must never be observable
// half-written: a crash mid-save used to leave a truncated file at the
// final path, which downstream tools then parsed as a corrupt trace. The
// helpers here write to `<path>.tmp` and rename into place — on POSIX the
// rename is atomic, so readers see either the old file or the complete new
// one, never a torn middle. Stream failures throw instead of silently
// truncating; a failed write leaves no `.tmp` litter behind.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace slmob {

void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes);
void write_file_atomic(const std::string& path, std::string_view text);

}  // namespace slmob
