#include "util/rng.hpp"

#include <cmath>

namespace slmob {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (~span + 1) % span;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  cached_normal_ = mag * std::sin(two_pi * u2);
  has_cached_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng{next()}; }

}  // namespace slmob
