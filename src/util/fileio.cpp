#include "util/fileio.hpp"

#include <cstdio>
#include <stdexcept>

namespace slmob {
namespace {

void write_atomic_impl(const std::string& path, const void* data, std::size_t size) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("write_file_atomic: cannot open " + tmp);
  }
  const bool wrote = std::fwrite(data, 1, size, f) == size;
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: write failed for " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: cannot rename " + tmp + " to " + path);
  }
}

}  // namespace

void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes) {
  write_atomic_impl(path, bytes.data(), bytes.size());
}

void write_file_atomic(const std::string& path, std::string_view text) {
  write_atomic_impl(path, text.data(), text.size());
}

}  // namespace slmob
