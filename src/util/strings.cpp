#include "util/strings.hpp"

#include <cctype>
#include <charconv>

namespace slmob {

std::vector<std::string> split(std::string_view input, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

long long parse_non_negative_int(std::string_view text) {
  text = trim(text);
  long long value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || value < 0) return -1;
  return value;
}

}  // namespace slmob
