#include "util/log.hpp"

#include <iostream>

namespace slmob {
namespace {

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::capture_to_buffer(bool capture) {
  capture_ = capture;
  if (!capture) buffer_.str({});
}

std::string Logger::captured() const { return buffer_.str(); }

void Logger::clear_captured() { buffer_.str({}); }

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  if (capture_) {
    buffer_ << '[' << level_name(level) << "] " << component << ": " << message << '\n';
  } else {
    std::cerr << '[' << level_name(level) << "] " << component << ": " << message << '\n';
  }
}

void log_debug(std::string_view component, std::string_view message) {
  Logger::instance().log(LogLevel::kDebug, component, message);
}
void log_info(std::string_view component, std::string_view message) {
  Logger::instance().log(LogLevel::kInfo, component, message);
}
void log_warn(std::string_view component, std::string_view message) {
  Logger::instance().log(LogLevel::kWarn, component, message);
}
void log_error(std::string_view component, std::string_view message) {
  Logger::instance().log(LogLevel::kError, component, message);
}

}  // namespace slmob
