// Process resource probes for benchmarks.
#pragma once

#include <cstdint>

namespace slmob {

// Peak resident set size (high-water mark) of the current process, in
// bytes. Linux: parsed from the VmHWM line of /proc/self/status. Returns 0
// on other platforms or when the probe fails — callers must treat 0 as
// "unavailable", not "no memory".
//
// Note the kernel reports the lifetime high-water mark: it never goes down,
// so comparing the footprint of two pipelines needs one process per
// pipeline (the bench harness forks for this).
[[nodiscard]] std::uint64_t peak_rss_bytes();

// Pins glibc's mmap threshold low (64 KiB) so large allocations are
// mmap-backed: freed generations return to the kernel immediately instead
// of lingering in the heap, and realloc can grow big buffers with mremap
// (no copy, no transient double-residency). Without the pin glibc's dynamic
// threshold ratchets up with the largest freed block and long-running
// accumulators quietly fall back to the copying heap path. Idempotent;
// no-op on non-glibc platforms. Called by the streaming analysis engine,
// whose peak-RSS contract is the point of the exercise.
void tune_malloc_for_streaming();

}  // namespace slmob
