#include "util/bytes.hpp"

#include <array>

namespace slmob {
namespace {

// Slice-by-8 tables for the reflected IEEE polynomial, built once at first
// use. table[0] is the classic bytewise table; table[t][b] extends it so
// that eight input bytes advance the CRC with eight independent lookups and
// two shifts instead of eight serially dependent table steps — journal
// replay, checkpoint verify and salvage all hash megabytes per run through
// this function.
using Crc32Tables = std::array<std::array<std::uint32_t, 256>, 8>;

const Crc32Tables& crc32_tables() {
  static const auto tables = [] {
    Crc32Tables t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t slice = 1; slice < 8; ++slice) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[slice][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  const Crc32Tables& t = crc32_tables();
  std::uint32_t crc = 0xFFFFFFFFu;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  // Eight bytes per iteration. The two words are assembled from individual
  // bytes (endian-independent; folds to a plain load on little-endian) and
  // the eight lookups carry no serial dependency between them.
  while (n >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    (static_cast<std::uint32_t>(p[1]) << 8) |
                                    (static_cast<std::uint32_t>(p[2]) << 16) |
                                    (static_cast<std::uint32_t>(p[3]) << 24));
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n != 0; ++p, --n) crc = t[0][(crc ^ *p) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void ByteWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(std::string_view s) {
  if (s.size() > 0xffff) throw std::length_error("ByteWriter::str: string too long");
  u16(static_cast<std::uint16_t>(s.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) throw DecodeError("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  std::uint16_t v = 0;
  v |= static_cast<std::uint16_t>(data_[pos_]);
  v |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::str() {
  const std::uint16_t len = u16();
  require(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

std::vector<std::uint8_t> ByteReader::raw(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace slmob
