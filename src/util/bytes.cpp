#include "util/bytes.hpp"

#include <array>

namespace slmob {
namespace {

// Table for the reflected IEEE polynomial, built once at first use.
const std::uint32_t* crc32_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  const std::uint32_t* table = crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void ByteWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(std::string_view s) {
  if (s.size() > 0xffff) throw std::length_error("ByteWriter::str: string too long");
  u16(static_cast<std::uint16_t>(s.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) throw DecodeError("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  std::uint16_t v = 0;
  v |= static_cast<std::uint16_t>(data_[pos_]);
  v |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::str() {
  const std::uint16_t len = u16();
  require(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

std::vector<std::uint8_t> ByteReader::raw(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace slmob
