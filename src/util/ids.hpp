// Strongly-typed integer identifiers.
//
// Avatars, circuits and sensors all have numeric ids; tagging them prevents
// accidentally mixing id spaces (an AvatarId is not a CircuitId).
#pragma once

#include <cstdint>
#include <functional>

namespace slmob {

template <typename Tag>
struct Id {
  std::uint32_t value{0};

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}
  constexpr bool operator==(const Id&) const = default;
  constexpr auto operator<=>(const Id&) const = default;
};

struct AvatarTag {};
struct CircuitTag {};
struct SensorTag {};
struct ObjectTag {};

// A unique, never-reused identifier for an avatar/user across a whole
// experiment (the paper's notion of a "unique visitor").
using AvatarId = Id<AvatarTag>;
// A protocol connection between one client and one sim server.
using CircuitId = Id<CircuitTag>;
using SensorId = Id<SensorTag>;
using ObjectId = Id<ObjectTag>;

}  // namespace slmob

template <typename Tag>
struct std::hash<slmob::Id<Tag>> {
  std::size_t operator()(const slmob::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
