// Deterministic pseudo-random number generation.
//
// Every stochastic component in the simulator draws from an Rng that is
// seeded explicitly, so a whole experiment is reproducible from a single
// 64-bit seed. The generator is xoshiro256**, seeded through SplitMix64 as
// its authors recommend; it is much faster than std::mt19937_64 and has no
// observable bias for our use.
#pragma once

#include <array>
#include <cstdint>

namespace slmob {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);
  // Standard normal via Box-Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev);
  // Exponential with the given mean (not rate). Requires mean > 0.
  double exponential(double mean);

  // Derives an independent child generator; used to give each subsystem its
  // own stream so adding draws in one subsystem does not perturb another.
  [[nodiscard]] Rng fork();

  // Raw xoshiro256** state, exposed so checkpoints can record the stream
  // position and a resumed (replayed) run can prove it reconstructed the
  // exact same stream. The cached Box-Muller variate is deliberately not
  // part of this: checkpoint verification compares two replays of identical
  // code, for which the four state words are already a complete witness.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return state_; }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
};

}  // namespace slmob
