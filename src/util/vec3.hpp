// Minimal 3-D vector used for avatar positions and distances.
//
// Coordinates follow the Second Life convention: a land (region) is a
// 256 x 256 m square, x/y in [0, 256), z is altitude in metres.
#pragma once

#include <cmath>
#include <ostream>

namespace slmob {

struct Vec3 {
  double x{0.0};
  double y{0.0};
  double z{0.0};

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr bool operator==(const Vec3& o) const = default;

  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y + z * z; }
  [[nodiscard]] double distance_to(const Vec3& o) const { return (*this - o).norm(); }
  // Planar (ground) distance; altitude differences are ignored. Line-of-sight
  // radio ranges in the paper are effectively planar because avatars stay at
  // ground level.
  [[nodiscard]] double distance2d_to(const Vec3& o) const {
    const double dx = x - o.x;
    const double dy = y - o.y;
    return std::sqrt(dx * dx + dy * dy);
  }
  // Unit vector pointing from *this towards `target`; zero vector if equal.
  [[nodiscard]] Vec3 direction_to(const Vec3& target) const {
    const Vec3 d = target - *this;
    const double n = d.norm();
    if (n <= 0.0) return {};
    return d / n;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace slmob
