// Minimal CSV reading/writing for trace import/export and bench output.
// Fields never contain commas or quotes in our formats, so no quoting layer
// is implemented; the writer rejects fields that would need it.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace slmob {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  // Writes one row; throws std::invalid_argument if a field contains a comma,
  // quote or newline.
  void row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

// Parses CSV text into rows of fields. Blank lines are skipped.
std::vector<std::vector<std::string>> parse_csv(std::string_view text);

}  // namespace slmob
