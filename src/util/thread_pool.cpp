#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace slmob {

ThreadPool::ThreadPool(std::size_t concurrency) {
  if (concurrency == 0) concurrency = default_concurrency();
  workers_.reserve(concurrency - 1);
  for (std::size_t i = 0; i + 1 < concurrency; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::default_concurrency() {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t hw = hw_raw > 0 ? static_cast<std::size_t>(hw_raw) : 1;
  if (const char* env = std::getenv("SLMOB_THREADS")) {
    const long parsed = std::atol(env);
    // Clamp to the core count: oversubscribing the default pool only adds
    // context-switch overhead. An explicit ThreadPool(n) still honours n.
    if (parsed > 0) return std::min(static_cast<std::size_t>(parsed), hw);
  }
  return hw;
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace slmob
