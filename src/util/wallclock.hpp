// The only sanctioned wall-clock entry point in the tree (enforced by
// slmob-lint's determinism/wall-clock rule — this file is the allowlist
// anchor, see DESIGN.md §16).
//
// Simulation time is tick-driven and replayable; real time may leak into
// exactly two kinds of code: the supervisor's watchdog/backoff machinery
// (which measures the host, not the simulation) and bench timing harnesses.
// Both go through this seam. Tests swap the clock with a deterministic mock
// via exchange_now_for_test(), so watchdog logic is testable without
// sleeping.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>

namespace slmob::wallclock {

using Duration = std::chrono::steady_clock::duration;

// Opaque monotonic timestamp. Arithmetic mirrors std::chrono time_points.
using TimePoint = std::chrono::steady_clock::time_point;

using NowFn = TimePoint (*)();

namespace detail {
inline TimePoint real_now() { return std::chrono::steady_clock::now(); }
inline std::atomic<NowFn>& now_fn() {
  static std::atomic<NowFn> fn{&real_now};
  return fn;
}
}  // namespace detail

// Current monotonic wall-clock reading (or the installed test mock).
inline TimePoint now() { return detail::now_fn().load(std::memory_order_relaxed)(); }

// Milliseconds elapsed since `t0`.
inline double ms_since(TimePoint t0) {
  return std::chrono::duration<double, std::milli>(now() - t0).count();
}

// Seconds elapsed since `t0`.
inline double seconds_since(TimePoint t0) {
  return std::chrono::duration<double>(now() - t0).count();
}

// Real-time sleep; not mocked (tests that mock the clock should not sleep).
inline void sleep_ms(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

// Installs a replacement clock for tests and returns the previous one.
// Callers must restore the returned function before the test exits.
inline NowFn exchange_now_for_test(NowFn fn) {
  return detail::now_fn().exchange(fn != nullptr ? fn : &detail::real_now);
}

}  // namespace slmob::wallclock
