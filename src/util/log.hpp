// Tiny leveled logger.
//
// The simulator is a library first: logging defaults to warnings-and-above on
// stderr and is globally configurable. No macros; call sites pay the cost of
// argument formatting only when the level is enabled (check `enabled` first
// in hot paths).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace slmob {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  // Global logger used by the whole library.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  // Redirects output to an internal buffer (for tests); empty sink restores
  // stderr.
  void capture_to_buffer(bool capture);
  [[nodiscard]] std::string captured() const;
  void clear_captured();

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_{LogLevel::kWarn};
  bool capture_{false};
  std::ostringstream buffer_;
};

void log_debug(std::string_view component, std::string_view message);
void log_info(std::string_view component, std::string_view message);
void log_warn(std::string_view component, std::string_view message);
void log_error(std::string_view component, std::string_view message);

}  // namespace slmob
