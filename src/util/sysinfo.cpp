#include "util/sysinfo.hpp"

#include <cstdio>
#include <cstring>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace slmob {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long parsed = 0;
      if (std::sscanf(line + 6, "%llu", &parsed) == 1) kib = parsed;
      break;
    }
  }
  // slmob-lint: allow(checked-durability) -- read-only /proc stream; close failure cannot lose data
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

void tune_malloc_for_streaming() {
#if defined(__GLIBC__)
  static const bool done = [] {
    mallopt(M_MMAP_THRESHOLD, 64 * 1024);
    return true;
  }();
  (void)done;
#endif
}

}  // namespace slmob
