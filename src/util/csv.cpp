#include "util/csv.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace slmob {

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    if (f.find_first_of(",\"\n\r") != std::string::npos) {
      throw std::invalid_argument("CsvWriter: field needs quoting, which is unsupported: " + f);
    }
    if (i > 0) out_ << ',';
    out_ << f;
  }
  out_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!trim(line).empty()) rows.push_back(split(line, ','));
      start = i + 1;
    }
  }
  return rows;
}

}  // namespace slmob
