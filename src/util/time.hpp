// Simulation time.
//
// The simulator is discrete-time: the engine advances in fixed ticks
// (default 1 s of virtual time). All measurement-facing quantities are
// expressed in virtual seconds as doubles, matching the paper's units.
#pragma once

#include <cstdint>

namespace slmob {

// A tick index. Tick 0 is the start of the experiment.
using Tick = std::int64_t;

// Virtual time in seconds.
using Seconds = double;

constexpr Seconds kSecondsPerMinute = 60.0;
constexpr Seconds kSecondsPerHour = 3600.0;
constexpr Seconds kSecondsPerDay = 86400.0;

// Converts a tick index to virtual seconds given the engine's tick length.
constexpr Seconds tick_to_seconds(Tick tick, Seconds tick_length) {
  return static_cast<Seconds>(tick) * tick_length;
}

}  // namespace slmob
