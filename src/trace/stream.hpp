// Streaming trace access: event-at-a-time readers and live sinks.
//
// Batch analysis loads a whole Trace into RAM; a TraceStream instead yields
// snapshots, coverage gaps and session events one at a time from a .slt
// file, a .sltj journal or an in-memory trace, so a single forward pass can
// analyze traces of any length with memory bounded by *concurrent* users
// rather than trace duration.
//
// Every stream honours one ordering contract consumers may rely on:
//
//   a gap [start, end) is emitted before any snapshot with time >= start.
//
// Sampling-degradation windows are delivered as *rate-change* events under
// the analogous contract: a change of the effective sampling factor at time
// t is emitted before any snapshot with time >= t. A consumer that applies
// each change as it arrives therefore knows the exact factor in force for
// every snapshot it processes, and reconstructs the same closed windows the
// batch Trace carries (every stream closes its last window — with a change
// back to factor 1 — before kEnd).
//
// With that contract, censoring decisions made from the gaps seen so far
// (GapTracker) are identical to decisions made with the complete gap list
// in hand: when a snapshot at time t is processed, every gap that could
// contain t or start before t is already known, and gaps still unseen start
// strictly after t, so covered_at / spans_gap / next_gap_start answer
// exactly as they would on the finished Trace. That equivalence is what
// makes streaming analysis bit-identical to the batch pipeline.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace slmob {

enum class StreamEventKind : std::uint8_t {
  kSnapshot = 0,
  kGap = 1,
  kSessionEvent = 2,
  kEnd = 3,
  kRateChange = 4,
};

struct StreamEvent {
  StreamEventKind kind{StreamEventKind::kEnd};
  // kSnapshot: points at the reader's internal snapshot buffer; valid until
  // the next call to next().
  const Snapshot* snapshot{nullptr};
  CoverageGap gap{};   // kGap
  Seconds time{0.0};   // kSessionEvent / kRateChange
  std::uint32_t factor{1};  // kRateChange: effective sampling factor from `time` on
};

// Pull-based trace reader. next() returns kEnd forever once exhausted.
class TraceStream {
 public:
  virtual ~TraceStream() = default;
  [[nodiscard]] virtual const std::string& land_name() const = 0;
  [[nodiscard]] virtual Seconds sampling_interval() const = 0;
  virtual StreamEvent next() = 0;
};

// Incrementally collected coverage gaps, answering the same questions as
// Trace (covered_at / spans_gap) plus the contact analysis' truncation-point
// query, against the gaps seen so far.
class GapTracker {
 public:
  // Same validation as Trace::add_gap: start < end, ordered, disjoint
  // (throws std::invalid_argument otherwise).
  void add(Seconds start, Seconds end);

  [[nodiscard]] bool any() const { return !gaps_.empty(); }
  [[nodiscard]] const std::vector<CoverageGap>& gaps() const { return gaps_; }
  [[nodiscard]] bool covered_at(Seconds t) const;
  [[nodiscard]] bool spans_gap(Seconds t0, Seconds t1) const;
  // Start of the first gap ending after covered instant `t` (t itself when
  // no such gap exists); the truncation point for observations running at t.
  [[nodiscard]] Seconds next_gap_start(Seconds t) const;
  [[nodiscard]] Seconds gap_seconds() const;

 private:
  std::vector<CoverageGap> gaps_;
};

// Incrementally collected sampling-degradation windows, fed by rate-change
// events. current_factor() answers the factor in force for the snapshot
// being processed (per the rate-change ordering contract); windows() equals
// Trace::degradations() once the stream has closed its last window.
class DegradationTracker {
 public:
  // Same validation as Trace::add_degradation via the window it closes;
  // throws std::invalid_argument on out-of-order changes.
  void set_factor(Seconds time, std::uint32_t factor);

  [[nodiscard]] bool any() const { return !windows_.empty() || factor_ > 1; }
  [[nodiscard]] std::uint32_t current_factor() const { return factor_; }
  [[nodiscard]] const std::vector<SamplingDegradation>& windows() const {
    return windows_;
  }
  [[nodiscard]] Seconds degraded_seconds() const;

 private:
  std::vector<SamplingDegradation> windows_;
  std::uint32_t factor_{1};
  Seconds open_start_{0.0};
};

// Push-based consumer of a live capture: the crawler (or drive_stream)
// forwards each snapshot and gap as it is recorded. on_begin is called once,
// before any other callback.
class LiveTraceSink {
 public:
  virtual ~LiveTraceSink() = default;
  virtual void on_begin(const std::string& land_name, Seconds sampling_interval) = 0;
  virtual void on_snapshot(const Snapshot& snapshot) = 0;
  virtual void on_gap(Seconds start, Seconds end) = 0;
  // Effective sampling factor changes to `factor` at `time` (overload
  // degradation ladder). Default no-op: sinks that ignore rate changes see
  // the historical callback set unchanged.
  virtual void on_rate_change(Seconds time, std::uint32_t factor) {
    (void)time;
    (void)factor;
  }
};

// Streams an in-memory Trace (snapshots and gaps merge-ordered per the gap
// contract above). The viewing constructor keeps a reference — the trace
// must outlive the stream; the owning constructor moves the trace in.
class MemoryTraceStream final : public TraceStream {
 public:
  explicit MemoryTraceStream(const Trace& trace) : trace_(&trace) {}
  explicit MemoryTraceStream(Trace&& trace)
      : owned_(std::make_unique<Trace>(std::move(trace))), trace_(owned_.get()) {}

  [[nodiscard]] const std::string& land_name() const override {
    return trace_->land_name();
  }
  [[nodiscard]] Seconds sampling_interval() const override {
    return trace_->sampling_interval();
  }
  StreamEvent next() override;

 private:
  std::unique_ptr<Trace> owned_;
  const Trace* trace_;
  std::size_t snap_next_{0};
  std::size_t gap_next_{0};
  // Rate-change boundary cursor: event 2k is window k's start, 2k+1 its end.
  std::size_t rate_next_{0};
};

// Streams a binary .slt trace file without materialising it. The gap block
// of the v2 format trails the snapshots, so construction makes one cheap
// skip-scan pass (read each snapshot's header, seek over its fixes) to
// collect the gaps and validate framing, then rewinds; snapshots decode one
// at a time on demand. Throws DecodeError / std::invalid_argument on the
// same malformed inputs decode_trace rejects.
class SltFileStream final : public TraceStream {
 public:
  explicit SltFileStream(const std::string& path);
  ~SltFileStream() override;
  SltFileStream(const SltFileStream&) = delete;
  SltFileStream& operator=(const SltFileStream&) = delete;

  [[nodiscard]] const std::string& land_name() const override { return land_; }
  [[nodiscard]] Seconds sampling_interval() const override { return interval_; }
  StreamEvent next() override;

 private:
  void read_exact(std::size_t n);
  void decode_next_snapshot();

  std::string path_;
  std::FILE* file_{nullptr};
  std::string land_;
  Seconds interval_{10.0};
  std::uint32_t snap_count_{0};
  std::uint32_t snaps_emitted_{0};
  std::vector<CoverageGap> gaps_;
  std::size_t gap_next_{0};
  std::vector<SamplingDegradation> degradations_;
  std::size_t rate_next_{0};  // boundary cursor, same scheme as MemoryTraceStream
  Snapshot current_;
  bool have_pending_{false};
  bool done_{false};
  std::vector<std::uint8_t> buf_;
};

// Streams a .sltj write-ahead journal with salvage semantics: frames are
// decoded until the first torn / oversized / CRC-failing / undecodable
// frame, which (with everything after it) is discarded; a journal that did
// not end with kEnd gets a synthetic trailing gap censoring the unrun
// remainder of the planned run, exactly as salvage_journal would record it.
// Unlike salvage (which can restart on a duplicate kBegin frame because it
// holds the whole trace), a second kBegin mid-stream is treated as the tear
// point — events already emitted cannot be taken back.
class JournalFileStream final : public TraceStream {
 public:
  explicit JournalFileStream(const std::string& path);
  ~JournalFileStream() override;
  JournalFileStream(const JournalFileStream&) = delete;
  JournalFileStream& operator=(const JournalFileStream&) = delete;

  [[nodiscard]] const std::string& land_name() const override { return land_; }
  [[nodiscard]] Seconds sampling_interval() const override { return interval_; }
  StreamEvent next() override;

  // Salvage-equivalent statistics; torn/clean_end/bytes_kept are final once
  // next() has returned kEnd.
  [[nodiscard]] bool torn() const { return torn_; }
  [[nodiscard]] bool clean_end() const { return clean_end_; }
  [[nodiscard]] Seconds planned_end() const { return planned_end_; }
  [[nodiscard]] std::size_t frames_read() const { return frames_read_; }
  [[nodiscard]] std::size_t snapshot_frames() const { return snapshot_frames_; }
  [[nodiscard]] std::size_t session_events() const { return session_events_; }
  [[nodiscard]] std::uint64_t bytes_kept() const { return bytes_kept_; }

 private:
  // Reads one frame into frame_buf_; false on clean EOF or tear (torn_ set).
  bool read_frame();
  StreamEvent finalize();

  std::string path_;
  std::FILE* file_{nullptr};
  std::string land_;
  Seconds interval_{10.0};
  Seconds planned_end_{0.0};
  Snapshot current_;
  std::vector<std::uint8_t> frame_buf_;
  Seconds last_snapshot_time_{0.0};
  Seconds last_gap_end_{0.0};
  bool have_snapshot_{false};
  bool have_gap_{false};
  bool gap_pending_{false};
  Seconds gap_pending_start_{0.0};
  bool degrade_pending_{false};
  Seconds degrade_pending_start_{0.0};
  Seconds last_degrade_end_{0.0};
  bool clean_end_{false};
  bool torn_{false};
  bool finalized_{false};
  bool end_emitted_{false};
  CoverageGap trailing_gap_{};
  bool have_trailing_gap_{false};
  // A degradation window left open at the tear closes at the censoring
  // boundary; the rate change back to 1 goes out before the trailing gap.
  Seconds trailing_rate_time_{0.0};
  bool have_trailing_rate_{false};
  std::size_t frames_read_{0};
  std::size_t snapshot_frames_{0};
  std::size_t session_events_{0};
  std::uint64_t bytes_kept_{0};
};

// Opens the right stream for a path by extension: .sltj -> journal stream,
// .csv -> an owning in-memory stream (CSV has no incremental framing), else
// binary .slt stream.
std::unique_ptr<TraceStream> open_trace_stream(const std::string& path);

// Pumps every event of `stream` into `sink` (session events are dropped —
// they carry no trace data). Calls sink.on_begin first.
void drive_stream(TraceStream& stream, LiveTraceSink& sink);

}  // namespace slmob
