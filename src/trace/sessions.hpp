// Session (login-to-logout) extraction from a sampled trace.
//
// The crawler only sees periodic snapshots, so sessions are reconstructed:
// an avatar absent for more than `absence_threshold` is considered logged
// out, and a later reappearance starts a new session. The paper's "travel
// time" (Fig. 4c) is the session duration; "travel length" (4a) the path
// length over the session; "effective travel time" (4b) the time spent
// moving (pauses excluded).
//
// Coverage gaps censor sessions: every session open when a gap starts is
// closed at its last observed snapshot, and reappearances after the gap
// start fresh sessions — presence is never assumed across unobserved time.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "trace/stream.hpp"
#include "trace/trace.hpp"

namespace slmob {

// One reconstructed visit of one avatar.
struct Session {
  AvatarId avatar;
  Seconds login{0.0};
  Seconds logout{0.0};
  // Position fixes (time-ordered) observed during the session.
  std::vector<Seconds> times;
  std::vector<Vec3> positions;

  [[nodiscard]] Seconds duration() const { return logout - login; }
};

struct SessionExtractionOptions {
  // An avatar unseen for strictly more than this is logged out. Default: 3
  // sampling intervals at tau = 10 s.
  Seconds absence_threshold{30.0};
  // Displacements below this (between consecutive fixes) count as standing
  // still for travel purposes. Coarse positions are quantised to whole
  // metres, so steps must clear the quantisation noise floor.
  double movement_epsilon{1.5};
};

// Extracts all sessions, ordered by (avatar, login time).
std::vector<Session> extract_sessions(const Trace& trace,
                                      const SessionExtractionOptions& options = {});

// Trip metrics of one session.
struct TripMetrics {
  AvatarId avatar;
  double travel_length{0.0};       // summed displacement over the session (m)
  Seconds effective_travel_time{0.0};  // time in motion
  Seconds travel_time{0.0};        // session duration (paper: login time)
};

TripMetrics trip_metrics(const Session& session, double movement_epsilon = 0.5);

// Incremental session reconstruction over a snapshot stream. Feed every
// *covered* snapshot in time order; each session is handed to the sink as it
// closes (absence timeout, gap censoring, or finish()). Sessions close in
// stream order, not the (avatar, login) order extract_sessions returns —
// consumers that need that order buffer and sort (the keys are unique).
//
// The gap handling is always on: against an empty GapTracker the gap branch
// never fires, which is exactly the batch extractor's gap-free behaviour.
class SessionStream {
 public:
  explicit SessionStream(const GapTracker& gaps,
                         SessionExtractionOptions options = {})
      : gaps_(&gaps), options_(options) {}

  void set_sink(std::function<void(Session&&)> sink) { sink_ = std::move(sink); }
  void on_snapshot(const Snapshot& snapshot);
  // Closes every still-open session (batch: logout at last sighting).
  void finish();

 private:
  void emit(Session&& session);

  const GapTracker* gaps_;
  SessionExtractionOptions options_;
  std::function<void(Session&&)> sink_;
  std::map<AvatarId, Session> open_;
  bool have_prev_{false};
  Seconds prev_time_{0.0};
};

}  // namespace slmob
