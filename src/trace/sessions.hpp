// Session (login-to-logout) extraction from a sampled trace.
//
// The crawler only sees periodic snapshots, so sessions are reconstructed:
// an avatar absent for more than `absence_threshold` is considered logged
// out, and a later reappearance starts a new session. The paper's "travel
// time" (Fig. 4c) is the session duration; "travel length" (4a) the path
// length over the session; "effective travel time" (4b) the time spent
// moving (pauses excluded).
//
// Coverage gaps censor sessions: every session open when a gap starts is
// closed at its last observed snapshot, and reappearances after the gap
// start fresh sessions — presence is never assumed across unobserved time.
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace slmob {

// One reconstructed visit of one avatar.
struct Session {
  AvatarId avatar;
  Seconds login{0.0};
  Seconds logout{0.0};
  // Position fixes (time-ordered) observed during the session.
  std::vector<Seconds> times;
  std::vector<Vec3> positions;

  [[nodiscard]] Seconds duration() const { return logout - login; }
};

struct SessionExtractionOptions {
  // An avatar unseen for strictly more than this is logged out. Default: 3
  // sampling intervals at tau = 10 s.
  Seconds absence_threshold{30.0};
  // Displacements below this (between consecutive fixes) count as standing
  // still for travel purposes. Coarse positions are quantised to whole
  // metres, so steps must clear the quantisation noise floor.
  double movement_epsilon{1.5};
};

// Extracts all sessions, ordered by (avatar, login time).
std::vector<Session> extract_sessions(const Trace& trace,
                                      const SessionExtractionOptions& options = {});

// Trip metrics of one session.
struct TripMetrics {
  AvatarId avatar;
  double travel_length{0.0};       // summed displacement over the session (m)
  Seconds effective_travel_time{0.0};  // time in motion
  Seconds travel_time{0.0};        // session duration (paper: login time)
};

TripMetrics trip_metrics(const Session& session, double movement_epsilon = 0.5);

}  // namespace slmob
