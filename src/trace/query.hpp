// Trace querying: the slice-and-dice layer the paper's web application
// provided over its measurement database ("measurement data is stored in a
// database that can be queried through an interactive web application").
//
// A TraceQuery is a composable filter over snapshots and fixes; running it
// yields a derived Trace that every analysis accepts.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "trace/trace.hpp"
#include "util/vec3.hpp"

namespace slmob {

// Axis-aligned ground rectangle [x0,x1) x [y0,y1).
struct RegionBox {
  double x0{0.0};
  double y0{0.0};
  double x1{256.0};
  double y1{256.0};

  [[nodiscard]] bool contains(const Vec3& p) const {
    return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
  }
};

class TraceQuery {
 public:
  // Keep only snapshots with time in [t0, t1).
  TraceQuery& between(Seconds t0, Seconds t1);
  // Keep only fixes inside the box.
  TraceQuery& within(RegionBox box);
  // Keep only the given avatars.
  TraceQuery& avatars(std::set<AvatarId> ids);
  // Thin to every n-th snapshot.
  TraceQuery& stride(std::size_t n);
  // Drop snapshots left without any fix after filtering.
  TraceQuery& drop_empty(bool enabled = true);

  [[nodiscard]] Trace run(const Trace& input) const;

  // Convenience: avatars ever observed inside `box` (e.g. "who visited the
  // dance floor?").
  static std::set<AvatarId> visitors_of(const Trace& trace, const RegionBox& box);

  // Presence matrix: for each avatar, the fraction of snapshots in which it
  // appears (trace-wide attendance).
  static std::map<AvatarId, double> presence(const Trace& trace);

 private:
  std::optional<std::pair<Seconds, Seconds>> time_range_;
  std::optional<RegionBox> box_;
  std::optional<std::set<AvatarId>> avatars_;
  std::size_t stride_{1};
  bool drop_empty_{false};
};

}  // namespace slmob
