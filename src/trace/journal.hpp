// Write-ahead trace journal (.sltj): crash-safe capture for long runs.
//
// The paper's 24 h traces were "interrupted several times" and had to be
// restarted by hand; an in-memory trace loses the whole run when the
// capture process dies. The journal makes capture durable: every record
// (snapshot, gap open/close, session event) is appended as one CRC32-framed,
// length-prefixed frame and flushed immediately, so a SIGKILL at any byte
// loses at most the frame being written.
//
// File layout:
//   magic "SLTJ" | u16 version
//   frame*           frame = u32 payload_len | u32 crc32(payload) | payload
// Payloads (ByteWriter encoding, little-endian):
//   kBegin    u8 type | str land | f64 sampling_interval | f64 planned_end
//   kSnapshot u8 type | f64 time | u32 n | n x (u32 id, f32 x, f32 y, f32 z)
//   kGapOpen  u8 type | f64 start
//   kGapClose u8 type | f64 start | f64 end
//   kSession  u8 type | f64 time | u8 code | str detail
//   kEnd      u8 type | f64 time
//   kDegradeOpen  u8 type | f64 start | u32 factor
//   kDegradeClose u8 type | f64 start | f64 end | u32 factor
//
// Salvage never throws on a torn or bit-flipped tail: frames are read until
// the first frame that is truncated, oversized or fails its CRC; that frame
// and everything after it are discarded, and the reconstructed Trace gets a
// trailing CoverageGap marking the censored remainder of the planned run.
// Only a file whose header or kBegin frame is unreadable is rejected
// (DecodeError) — such a file never held a single complete record.
#pragma once

#include <cstdio>
#include <string>

#include "trace/trace.hpp"
#include "util/bytes.hpp"

namespace slmob {

enum class JournalRecord : std::uint8_t {
  kBegin = 0,
  kSnapshot = 1,
  kGapOpen = 2,
  kGapClose = 3,
  kSession = 4,
  kEnd = 5,
  // Sampling-degradation windows (overload protection slowed the snapshot
  // rate): open is written before the first degraded snapshot, close after
  // the last, mirroring the gap open/close pattern.
  kDegradeOpen = 6,
  kDegradeClose = 7,
};

// Session-event codes carried by kSession frames (diagnostic only; salvage
// counts them but they do not affect the reconstructed trace).
enum class SessionEvent : std::uint8_t {
  kLogin = 0,
  kRelogin = 1,
  kFeedReconnect = 2,
};

// Appends frames to a journal file, flushing after every frame. All methods
// throw std::runtime_error on I/O failure — a measurement rig must know its
// durability layer is broken rather than sample into the void.
class TraceJournalWriter {
 public:
  // Creates (truncates) `path` and writes the file header. `planned_end` is
  // the intended virtual end time of the run; salvage uses it to extend the
  // trailing gap of a crashed run to the full planned duration (0 = unknown).
  TraceJournalWriter(const std::string& path, Seconds planned_end);
  // Re-opens an existing journal for appending after truncating it to
  // `offset` bytes (a checkpoint's recorded frontier). The retained prefix
  // must contain an intact header; frames past the offset are discarded
  // because a deterministic replay regenerates them bit-for-bit.
  static TraceJournalWriter resume(const std::string& path, std::uint64_t offset,
                                   Seconds planned_end);
  ~TraceJournalWriter();

  TraceJournalWriter(TraceJournalWriter&& other) noexcept;
  TraceJournalWriter& operator=(TraceJournalWriter&&) = delete;
  TraceJournalWriter(const TraceJournalWriter&) = delete;
  TraceJournalWriter& operator=(const TraceJournalWriter&) = delete;

  // First frame of every journal; must precede all records. A resumed
  // journal is already begun (the frame lives in the retained prefix).
  void begin(const std::string& land_name, Seconds sampling_interval);
  [[nodiscard]] bool begun() const { return begun_; }

  void append_snapshot(const Snapshot& snapshot);
  void append_gap_open(Seconds start);
  void append_gap_close(Seconds start, Seconds end);
  void append_degrade_open(Seconds start, std::uint32_t factor);
  void append_degrade_close(Seconds start, Seconds end, std::uint32_t factor);
  void append_session(Seconds time, SessionEvent event, const std::string& detail = "");
  // Clean finalization: a journal ending in kEnd salvages with no trailing gap.
  void append_end(Seconds time);

  // Current byte offset of the frame frontier (checkpoints record this).
  [[nodiscard]] std::uint64_t offset() const { return offset_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  TraceJournalWriter() = default;
  void append_frame(const ByteWriter& payload);

  std::string path_;
  std::FILE* file_{nullptr};
  std::uint64_t offset_{0};
  Seconds planned_end_{0.0};
  bool begun_{false};
};

// Result of reading a journal back, torn tail and all.
struct JournalSalvage {
  Trace trace;
  Seconds planned_end{0.0};
  std::size_t frames_read{0};       // intact frames, including kBegin/kEnd
  std::size_t snapshots{0};
  std::size_t session_events{0};
  std::uint64_t bytes_kept{0};      // offset of the first torn byte (= file
                                    // size when nothing was torn)
  bool torn{false};                 // a trailing frame was discarded
  bool clean_end{false};            // journal finished with a kEnd frame
};

// Reconstructs a Trace from journal bytes, truncating any torn tail (see
// file comment for the exact semantics). Throws DecodeError only when the
// header or the kBegin frame is unreadable.
JournalSalvage salvage_journal_bytes(std::span<const std::uint8_t> bytes);
// File variant; throws std::runtime_error when the file cannot be read.
JournalSalvage salvage_journal(const std::string& path);

}  // namespace slmob
