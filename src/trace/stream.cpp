#include "trace/stream.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "trace/journal.hpp"
#include "trace/serialize.hpp"
#include "util/bytes.hpp"

namespace slmob {
namespace {

constexpr std::uint8_t kSltMagic[4] = {'S', 'L', 'T', 'R'};
constexpr std::uint8_t kJournalMagic[4] = {'S', 'L', 'T', 'J'};
constexpr std::uint16_t kJournalVersion = 1;
constexpr std::size_t kJournalHeaderBytes = 6;  // magic + version
constexpr std::uint32_t kMaxFramePayload = 16u * 1024u * 1024u;
// Per-fix wire size in both .slt and .sltj: u32 id + 3 x f32 position.
constexpr std::size_t kFixBytes = 16;

bool has_suffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void decode_fixes(ByteReader& r, std::uint32_t count, Snapshot& out) {
  out.fixes.clear();
  out.fixes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    AvatarFix fix;
    fix.id = AvatarId{r.u32()};
    fix.pos.x = r.f32();
    fix.pos.y = r.f32();
    fix.pos.z = r.f32();
    out.fixes.push_back(fix);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// GapTracker

void GapTracker::add(Seconds start, Seconds end) {
  if (!(start < end)) {
    throw std::invalid_argument("Trace::add_gap: gap must have start < end");
  }
  if (!gaps_.empty() && start < gaps_.back().end) {
    throw std::invalid_argument("Trace::add_gap: gaps must be ordered and disjoint");
  }
  gaps_.push_back({start, end});
}

bool GapTracker::covered_at(Seconds t) const {
  for (const auto& gap : gaps_) {
    if (gap.contains(t)) return false;
    if (gap.start > t) break;  // gaps are ordered
  }
  return true;
}

bool GapTracker::spans_gap(Seconds t0, Seconds t1) const {
  for (const auto& gap : gaps_) {
    if (gap.start < t1 && gap.end > t0) return true;
    if (gap.start >= t1) break;
  }
  return false;
}

Seconds GapTracker::next_gap_start(Seconds t) const {
  for (const auto& gap : gaps_) {
    if (gap.end > t) return gap.start;
  }
  return t;
}

Seconds GapTracker::gap_seconds() const {
  Seconds total = 0.0;
  for (const auto& gap : gaps_) total += gap.length();
  return total;
}

// ---------------------------------------------------------------------------
// DegradationTracker

void DegradationTracker::set_factor(Seconds time, std::uint32_t factor) {
  if (factor == factor_) return;
  if (factor_ > 1) {
    if (!(open_start_ < time)) {
      throw std::invalid_argument("Trace::add_degradation: window must have start < end");
    }
    if (!windows_.empty() && open_start_ < windows_.back().end) {
      throw std::invalid_argument(
          "Trace::add_degradation: windows must be ordered and disjoint");
    }
    windows_.push_back({open_start_, time, factor_});
  }
  factor_ = factor;
  open_start_ = time;
}

Seconds DegradationTracker::degraded_seconds() const {
  Seconds total = 0.0;
  for (const auto& w : windows_) total += w.length();
  return total;
}

namespace {

// Rate-change boundary for a degradation-window list under the cursor scheme
// used by MemoryTraceStream / SltFileStream: event 2k is window k's start
// (factor becomes windows[k].factor), event 2k+1 its end (factor back to 1).
bool rate_boundary(const std::vector<SamplingDegradation>& windows, std::size_t idx,
                   Seconds& time, std::uint32_t& factor) {
  const std::size_t w = idx / 2;
  if (w >= windows.size()) return false;
  if (idx % 2 == 0) {
    time = windows[w].start;
    factor = windows[w].factor;
  } else {
    time = windows[w].end;
    factor = 1;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryTraceStream

StreamEvent MemoryTraceStream::next() {
  const auto& snaps = trace_->snapshots();
  const auto& gaps = trace_->gaps();
  // A rate change goes out before the first snapshot at or past its time,
  // and before any gap at or past it (boundaries and gaps never interleave
  // ambiguously: the crawler closes degradation windows at gap edges).
  Seconds rate_time = 0.0;
  std::uint32_t rate_factor = 1;
  const bool have_rate = rate_boundary(trace_->degradations(), rate_next_, rate_time, rate_factor);
  if (have_rate &&
      (snap_next_ >= snaps.size() || rate_time <= snaps[snap_next_].time) &&
      (gap_next_ >= gaps.size() || rate_time <= gaps[gap_next_].start)) {
    ++rate_next_;
    StreamEvent ev;
    ev.kind = StreamEventKind::kRateChange;
    ev.time = rate_time;
    ev.factor = rate_factor;
    return ev;
  }
  // A gap goes out before the first snapshot at or past its start (the
  // ordering contract in the header comment).
  if (gap_next_ < gaps.size() &&
      (snap_next_ >= snaps.size() || gaps[gap_next_].start <= snaps[snap_next_].time)) {
    StreamEvent ev;
    ev.kind = StreamEventKind::kGap;
    ev.gap = gaps[gap_next_++];
    return ev;
  }
  if (snap_next_ < snaps.size()) {
    StreamEvent ev;
    ev.kind = StreamEventKind::kSnapshot;
    ev.snapshot = &snaps[snap_next_++];
    return ev;
  }
  if (have_rate) {
    // Trailing boundaries (window ends past the last snapshot) still go out
    // so every opened window is closed before kEnd.
    ++rate_next_;
    StreamEvent ev;
    ev.kind = StreamEventKind::kRateChange;
    ev.time = rate_time;
    ev.factor = rate_factor;
    return ev;
  }
  return {};
}

// ---------------------------------------------------------------------------
// SltFileStream

SltFileStream::SltFileStream(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("open_trace_stream: cannot open " + path);
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    throw std::runtime_error("open_trace_stream: cannot seek " + path);
  }
  const long file_size = std::ftell(file_);
  std::rewind(file_);

  // Header: magic, version, land name, sampling interval, snapshot count.
  read_exact(6);
  if (!std::equal(buf_.begin(), buf_.begin() + 4, kSltMagic)) {
    throw DecodeError("decode_trace: bad magic");
  }
  std::uint16_t version = 0;
  {
    ByteReader r(std::span{buf_}.subspan(4, 2));
    version = r.u16();
  }
  if (version < 1 || version > 3) {
    throw DecodeError("decode_trace: unsupported version");
  }
  read_exact(2);
  std::uint16_t land_len = 0;
  {
    ByteReader r(buf_);
    land_len = r.u16();
  }
  read_exact(land_len);
  land_.assign(reinterpret_cast<const char*>(buf_.data()), land_len);
  read_exact(12);
  {
    ByteReader r(buf_);
    interval_ = r.f64();
    snap_count_ = r.u32();
  }
  const long data_offset = std::ftell(file_);

  // Skip-scan: walk the snapshot headers (seeking over the fixes) to reach
  // the v2 gap footer and validate framing, then rewind. This touches 12
  // bytes per snapshot, so it is I/O-cheap even for very long traces.
  Seconds prev_time = 0.0;
  for (std::uint32_t i = 0; i < snap_count_; ++i) {
    read_exact(12);
    Seconds time = 0.0;
    std::uint32_t fix_count = 0;
    {
      ByteReader r(buf_);
      time = r.f64();
      fix_count = r.u32();
    }
    if (i > 0 && time < prev_time) {
      throw std::invalid_argument("Trace::add: snapshots must be time-ordered");
    }
    prev_time = time;
    const long fix_bytes = static_cast<long>(kFixBytes * static_cast<std::size_t>(fix_count));
    if (std::ftell(file_) + fix_bytes > file_size) {
      throw DecodeError("decode_trace: truncated snapshot block");
    }
    if (std::fseek(file_, fix_bytes, SEEK_CUR) != 0) {
      throw std::runtime_error("open_trace_stream: cannot seek " + path);
    }
  }
  if (version >= 2) {
    read_exact(4);
    std::uint32_t gap_count = 0;
    {
      ByteReader r(buf_);
      gap_count = r.u32();
    }
    gaps_.reserve(gap_count);
    for (std::uint32_t i = 0; i < gap_count; ++i) {
      read_exact(16);
      ByteReader r(buf_);
      const Seconds start = r.f64();
      const Seconds end = r.f64();
      // Same validation Trace::add_gap applies during decode_trace.
      if (!(start < end)) {
        throw std::invalid_argument("Trace::add_gap: gap must have start < end");
      }
      if (!gaps_.empty() && start < gaps_.back().end) {
        throw std::invalid_argument("Trace::add_gap: gaps must be ordered and disjoint");
      }
      gaps_.push_back({start, end});
    }
  }
  if (version >= 3) {
    read_exact(4);
    std::uint32_t degr_count = 0;
    {
      ByteReader r(buf_);
      degr_count = r.u32();
    }
    degradations_.reserve(degr_count);
    for (std::uint32_t i = 0; i < degr_count; ++i) {
      read_exact(20);
      ByteReader r(buf_);
      const Seconds start = r.f64();
      const Seconds end = r.f64();
      const std::uint32_t factor = r.u32();
      // Same validation Trace::add_degradation applies during decode_trace.
      if (!(start < end) || factor < 2) {
        throw std::invalid_argument("Trace::add_degradation: window must have start < end");
      }
      if (!degradations_.empty() && start < degradations_.back().end) {
        throw std::invalid_argument(
            "Trace::add_degradation: windows must be ordered and disjoint");
      }
      degradations_.push_back({start, end, factor});
    }
  }
  if (std::ftell(file_) != file_size) {
    throw DecodeError("decode_trace: trailing bytes");
  }
  if (std::fseek(file_, data_offset, SEEK_SET) != 0) {
    throw std::runtime_error("open_trace_stream: cannot seek " + path);
  }
}

SltFileStream::~SltFileStream() {
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  if (file_ != nullptr) std::fclose(file_);
}

void SltFileStream::read_exact(std::size_t n) {
  buf_.resize(n);
  if (n > 0 && std::fread(buf_.data(), 1, n, file_) != n) {
    throw DecodeError("decode_trace: unexpected end of file");
  }
}

void SltFileStream::decode_next_snapshot() {
  read_exact(12);
  std::uint32_t fix_count = 0;
  {
    ByteReader r(buf_);
    current_.time = r.f64();
    fix_count = r.u32();
  }
  read_exact(kFixBytes * static_cast<std::size_t>(fix_count));
  ByteReader r(buf_);
  decode_fixes(r, fix_count, current_);
}

StreamEvent SltFileStream::next() {
  if (done_) return {};
  if (!have_pending_ && snaps_emitted_ < snap_count_) {
    decode_next_snapshot();
    have_pending_ = true;
  }
  Seconds rate_time = 0.0;
  std::uint32_t rate_factor = 1;
  const bool have_rate = rate_boundary(degradations_, rate_next_, rate_time, rate_factor);
  if (have_rate && (!have_pending_ || rate_time <= current_.time) &&
      (gap_next_ >= gaps_.size() || rate_time <= gaps_[gap_next_].start)) {
    ++rate_next_;
    StreamEvent ev;
    ev.kind = StreamEventKind::kRateChange;
    ev.time = rate_time;
    ev.factor = rate_factor;
    return ev;
  }
  if (gap_next_ < gaps_.size() &&
      (!have_pending_ || gaps_[gap_next_].start <= current_.time)) {
    StreamEvent ev;
    ev.kind = StreamEventKind::kGap;
    ev.gap = gaps_[gap_next_++];
    return ev;
  }
  if (have_pending_) {
    have_pending_ = false;
    ++snaps_emitted_;
    StreamEvent ev;
    ev.kind = StreamEventKind::kSnapshot;
    ev.snapshot = &current_;
    return ev;
  }
  done_ = true;
  return {};
}

// ---------------------------------------------------------------------------
// JournalFileStream

JournalFileStream::JournalFileStream(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("open_trace_stream: cannot open " + path);
  }
  std::uint8_t header[kJournalHeaderBytes];
  if (std::fread(header, 1, kJournalHeaderBytes, file_) != kJournalHeaderBytes ||
      !std::equal(header, header + 4, kJournalMagic)) {
    throw DecodeError("salvage_journal: bad magic");
  }
  {
    ByteReader r(std::span{header}.subspan(4, 2));
    if (r.u16() != kJournalVersion) {
      throw DecodeError("salvage_journal: unsupported version");
    }
  }
  bytes_kept_ = kJournalHeaderBytes;

  // The kBegin frame carries the stream identity (land, interval, planned
  // end); a journal without one never held a complete record.
  if (!read_frame()) {
    throw DecodeError("salvage_journal: no intact begin frame");
  }
  try {
    ByteReader r(frame_buf_);
    if (static_cast<JournalRecord>(r.u8()) != JournalRecord::kBegin) {
      throw DecodeError("salvage_journal: first frame is not kBegin");
    }
    land_ = r.str();
    interval_ = r.f64();
    planned_end_ = r.f64();
  } catch (const DecodeError&) {
    throw DecodeError("salvage_journal: no intact begin frame");
  }
  bytes_kept_ += 8 + frame_buf_.size();
  frames_read_ = 1;
}

JournalFileStream::~JournalFileStream() {
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  if (file_ != nullptr) std::fclose(file_);
}

bool JournalFileStream::read_frame() {
  if (torn_) return false;
  std::uint8_t head[8];
  const std::size_t got = std::fread(head, 1, sizeof head, file_);
  if (got < sizeof head) {
    torn_ = got > 0;  // leftover bytes after the last whole frame are a tear
    return false;
  }
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  {
    ByteReader r(head);
    len = r.u32();
    crc = r.u32();
  }
  if (len > kMaxFramePayload) {
    torn_ = true;
    return false;
  }
  frame_buf_.resize(len);
  if (len > 0 && std::fread(frame_buf_.data(), 1, len, file_) != len) {
    torn_ = true;
    return false;
  }
  if (crc32(frame_buf_) != crc) {
    torn_ = true;
    return false;
  }
  return true;
}

StreamEvent JournalFileStream::finalize() {
  if (!finalized_) {
    finalized_ = true;
    // Same censoring rule as salvage_journal: a journal that did not finish
    // with kEnd belongs to a run that died, so the unrun remainder of the
    // planned run becomes a trailing gap (unless no snapshot was ever taken,
    // in which case the trace simply starts later).
    if (!clean_end_ && have_snapshot_) {
      const Seconds start =
          gap_pending_ ? gap_pending_start_
                       : std::max(last_snapshot_time_ + interval_, last_gap_end_);
      const Seconds end = std::max(planned_end_, start + interval_);
      if (!(start < end)) {
        throw std::invalid_argument("Trace::add_gap: gap must have start < end");
      }
      if (start < last_gap_end_) {
        throw std::invalid_argument("Trace::add_gap: gaps must be ordered and disjoint");
      }
      trailing_gap_ = {start, end};
      have_trailing_gap_ = true;
      // Same closure salvage applies: a degradation window still open at the
      // tear ends at the censoring boundary, and the rate change back to 1
      // precedes the trailing gap.
      if (degrade_pending_ && degrade_pending_start_ < start) {
        trailing_rate_time_ = start;
        have_trailing_rate_ = true;
        degrade_pending_ = false;
      }
    }
  }
  if (have_trailing_rate_) {
    have_trailing_rate_ = false;
    StreamEvent ev;
    ev.kind = StreamEventKind::kRateChange;
    ev.time = trailing_rate_time_;
    ev.factor = 1;
    return ev;
  }
  if (have_trailing_gap_) {
    have_trailing_gap_ = false;
    StreamEvent ev;
    ev.kind = StreamEventKind::kGap;
    ev.gap = trailing_gap_;
    return ev;
  }
  end_emitted_ = true;
  return {};
}

StreamEvent JournalFileStream::next() {
  if (end_emitted_) return {};
  if (finalized_) return finalize();
  for (;;) {
    if (!read_frame()) return finalize();
    StreamEvent ev;
    bool have_event = false;
    bool frame_ok = true;
    try {
      ByteReader r(frame_buf_);
      const auto type = static_cast<JournalRecord>(r.u8());
      switch (type) {
        case JournalRecord::kBegin:
          // salvage_journal can restart the trace on a duplicate kBegin; a
          // stream cannot take back emitted events, so treat it as the tear.
          frame_ok = false;
          break;
        case JournalRecord::kSnapshot: {
          const Seconds time = r.f64();
          const std::uint32_t n = r.u32();
          if (have_snapshot_ && time < last_snapshot_time_) {
            // Trace::add would throw here during salvage, tearing the frame.
            frame_ok = false;
            break;
          }
          decode_fixes(r, n, current_);
          current_.time = time;
          last_snapshot_time_ = time;
          have_snapshot_ = true;
          ++snapshot_frames_;
          ev.kind = StreamEventKind::kSnapshot;
          ev.snapshot = &current_;
          have_event = true;
          break;
        }
        case JournalRecord::kGapOpen:
          gap_pending_ = true;
          gap_pending_start_ = r.f64();
          break;
        case JournalRecord::kGapClose: {
          const Seconds start = r.f64();
          const Seconds end = r.f64();
          // Trace::add_gap validation; a violating frame is the tear point.
          if (!(start < end) || (have_gap_ && start < last_gap_end_)) {
            frame_ok = false;
            break;
          }
          last_gap_end_ = end;
          have_gap_ = true;
          gap_pending_ = false;
          ev.kind = StreamEventKind::kGap;
          ev.gap = {start, end};
          have_event = true;
          break;
        }
        case JournalRecord::kSession:
          ++session_events_;
          ev.kind = StreamEventKind::kSessionEvent;
          ev.time = r.remaining() >= 8 ? r.f64() : 0.0;
          have_event = true;
          break;
        case JournalRecord::kDegradeOpen: {
          const Seconds start = r.f64();
          const std::uint32_t factor = r.u32();
          if (factor < 2) {
            frame_ok = false;
            break;
          }
          degrade_pending_ = true;
          degrade_pending_start_ = start;
          ev.kind = StreamEventKind::kRateChange;
          ev.time = start;
          ev.factor = factor;
          have_event = true;
          break;
        }
        case JournalRecord::kDegradeClose: {
          const Seconds start = r.f64();
          const Seconds end = r.f64();
          const std::uint32_t factor = r.u32();
          // Trace::add_degradation validation; a violating frame is the tear.
          if (!(start < end) || factor < 2 || start < last_degrade_end_) {
            frame_ok = false;
            break;
          }
          last_degrade_end_ = end;
          degrade_pending_ = false;
          ev.kind = StreamEventKind::kRateChange;
          ev.time = end;
          ev.factor = 1;
          have_event = true;
          break;
        }
        case JournalRecord::kEnd:
          clean_end_ = true;
          break;
        default:
          frame_ok = false;
          break;
      }
      if (type != JournalRecord::kEnd && clean_end_) clean_end_ = false;
    } catch (const std::exception&) {
      frame_ok = false;
    }
    if (!frame_ok) {
      torn_ = true;
      return finalize();
    }
    bytes_kept_ += 8 + frame_buf_.size();
    ++frames_read_;
    if (have_event) return ev;
  }
}

// ---------------------------------------------------------------------------

std::unique_ptr<TraceStream> open_trace_stream(const std::string& path) {
  if (has_suffix(path, ".sltj")) {
    return std::make_unique<JournalFileStream>(path);
  }
  if (has_suffix(path, ".csv")) {
    // CSV has no incremental framing worth exploiting; load and stream from
    // memory with the same land/interval defaults read_any uses.
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("open_trace_stream: cannot open " + path);
    std::string text{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
    return std::make_unique<MemoryTraceStream>(trace_from_csv(text, path, 10.0));
  }
  return std::make_unique<SltFileStream>(path);
}

void drive_stream(TraceStream& stream, LiveTraceSink& sink) {
  sink.on_begin(stream.land_name(), stream.sampling_interval());
  for (;;) {
    const StreamEvent ev = stream.next();
    switch (ev.kind) {
      case StreamEventKind::kSnapshot:
        sink.on_snapshot(*ev.snapshot);
        break;
      case StreamEventKind::kGap:
        sink.on_gap(ev.gap.start, ev.gap.end);
        break;
      case StreamEventKind::kRateChange:
        sink.on_rate_change(ev.time, ev.factor);
        break;
      case StreamEventKind::kSessionEvent:
        break;
      case StreamEventKind::kEnd:
        return;
    }
  }
}

}  // namespace slmob
