// Trace persistence.
//
// Two formats:
//  * binary (".slt"): compact, versioned, exact round-trip — the working
//    format for saving/replaying experiments;
//  * CSV: one row per fix (time,avatar,x,y,z) — for external tools (R,
//    gnuplot, the DTN simulators the paper's traces were published for).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace slmob {

// Binary encoding. Layout: magic "SLTR", u16 version, land name, f64
// sampling interval, u32 snapshot count, then per snapshot: f64 time, u32 fix
// count, per fix: u32 avatar id, 3x f32 position. Version 2 appends the
// coverage gaps: u32 gap count, per gap f64 start, f64 end. Version 3 appends
// the sampling degradations: u32 count, per window f64 start, f64 end,
// u32 factor.
std::vector<std::uint8_t> encode_trace(const Trace& trace);

// Decodes a binary trace (version 1, 2 or 3); throws DecodeError on
// malformed input or unsupported version.
Trace decode_trace(std::span<const std::uint8_t> bytes);

// CSV with header "time,avatar,x,y,z". Coverage gaps are emitted as trailing
// sentinel rows: "gap",start,end,0,0 — external tools filtering on numeric
// avatar ids skip them naturally. Sampling degradations follow the same
// pattern: "degraded",start,end,factor,0.
std::string trace_to_csv(const Trace& trace);
Trace trace_from_csv(std::string_view text, std::string land_name,
                     Seconds sampling_interval);

// File helpers (binary format). Throw std::runtime_error on I/O failure.
void save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

// CSV export with the same durability contract as save_trace: written
// atomically (tmp + rename), throws on any I/O failure — a full disk must
// never leave a silently truncated CSV behind with a success exit.
void save_trace_csv(const Trace& trace, const std::string& path);

}  // namespace slmob
