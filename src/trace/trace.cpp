#include "trace/trace.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace slmob {

std::optional<Vec3> Snapshot::find(AvatarId id) const {
  for (const auto& fix : fixes) {
    if (fix.id == id) return fix.pos;
  }
  return std::nullopt;
}

void Trace::add(Snapshot snapshot) {
  if (!snapshots_.empty() && snapshot.time < snapshots_.back().time) {
    throw std::invalid_argument("Trace::add: snapshots must be time-ordered");
  }
  snapshots_.push_back(std::move(snapshot));
}

void Trace::add_gap(Seconds start, Seconds end) {
  if (!(start < end)) {
    throw std::invalid_argument("Trace::add_gap: gap must have start < end");
  }
  if (!gaps_.empty() && start < gaps_.back().end) {
    throw std::invalid_argument("Trace::add_gap: gaps must be ordered and disjoint");
  }
  gaps_.push_back({start, end});
}

void Trace::add_degradation(Seconds start, Seconds end, std::uint32_t factor) {
  if (!(start < end)) {
    throw std::invalid_argument("Trace::add_degradation: window must have start < end");
  }
  if (factor < 2) {
    throw std::invalid_argument("Trace::add_degradation: factor must be >= 2");
  }
  if (!degradations_.empty() && start < degradations_.back().end) {
    throw std::invalid_argument(
        "Trace::add_degradation: windows must be ordered and disjoint");
  }
  degradations_.push_back({start, end, factor});
}

std::uint32_t Trace::degradation_factor_at(Seconds t) const {
  for (const auto& d : degradations_) {
    if (d.contains(t)) return d.factor;
    if (d.start > t) break;  // windows are ordered
  }
  return 1;
}

Seconds Trace::degraded_seconds() const {
  Seconds total = 0.0;
  for (const auto& d : degradations_) total += d.length();
  return total;
}

bool Trace::covered_at(Seconds t) const {
  for (const auto& gap : gaps_) {
    if (gap.contains(t)) return false;
    if (gap.start > t) break;  // gaps are ordered
  }
  return true;
}

bool Trace::spans_gap(Seconds t0, Seconds t1) const {
  for (const auto& gap : gaps_) {
    if (gap.start < t1 && gap.end > t0) return true;
    if (gap.start >= t1) break;
  }
  return false;
}

Seconds Trace::gap_seconds() const {
  Seconds total = 0.0;
  for (const auto& gap : gaps_) total += gap.length();
  return total;
}

TraceSummary Trace::summary() const {
  TraceSummary s;
  s.snapshot_count = snapshots_.size();
  s.gap_count = gaps_.size();
  s.gap_seconds = gap_seconds();
  s.degradation_count = degradations_.size();
  s.degraded_seconds = degraded_seconds();
  if (snapshots_.empty()) return s;
  std::set<AvatarId> unique;
  std::size_t total_fixes = 0;
  for (const auto& snap : snapshots_) {
    total_fixes += snap.fixes.size();
    s.max_concurrent = std::max(s.max_concurrent, snap.fixes.size());
    for (const auto& fix : snap.fixes) unique.insert(fix.id);
  }
  s.unique_users = unique.size();
  s.avg_concurrent = static_cast<double>(total_fixes) / static_cast<double>(snapshots_.size());
  s.duration = snapshots_.back().time - snapshots_.front().time;
  return s;
}

std::vector<AvatarId> Trace::unique_avatars() const {
  std::set<AvatarId> unique;
  for (const auto& snap : snapshots_) {
    for (const auto& fix : snap.fixes) unique.insert(fix.id);
  }
  return {unique.begin(), unique.end()};
}

Trace Trace::slice(Seconds t0, Seconds t1) const {
  Trace out(land_name_, sampling_interval_);
  for (const auto& snap : snapshots_) {
    if (snap.time >= t0 && snap.time < t1) out.add(snap);
  }
  for (const auto& gap : gaps_) {
    const Seconds start = std::max(gap.start, t0);
    const Seconds end = std::min(gap.end, t1);
    if (start < end) out.add_gap(start, end);
  }
  for (const auto& d : degradations_) {
    const Seconds start = std::max(d.start, t0);
    const Seconds end = std::min(d.end, t1);
    if (start < end) out.add_degradation(start, end, d.factor);
  }
  return out;
}

std::size_t Trace::strip_sitting_fixes() {
  std::size_t dropped = 0;
  for (auto& snap : snapshots_) {
    const auto is_origin = [](const AvatarFix& f) {
      return f.pos.x == 0.0 && f.pos.y == 0.0 && f.pos.z == 0.0;
    };
    const auto before = snap.fixes.size();
    snap.fixes.erase(std::remove_if(snap.fixes.begin(), snap.fixes.end(), is_origin),
                     snap.fixes.end());
    dropped += before - snap.fixes.size();
  }
  return dropped;
}

}  // namespace slmob
