#include "trace/query.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace slmob {

TraceQuery& TraceQuery::between(Seconds t0, Seconds t1) {
  if (t1 < t0) throw std::invalid_argument("TraceQuery::between: t1 < t0");
  time_range_ = {t0, t1};
  return *this;
}

TraceQuery& TraceQuery::within(RegionBox box) {
  if (box.x1 < box.x0 || box.y1 < box.y0) {
    throw std::invalid_argument("TraceQuery::within: malformed box");
  }
  box_ = box;
  return *this;
}

TraceQuery& TraceQuery::avatars(std::set<AvatarId> ids) {
  avatars_ = std::move(ids);
  return *this;
}

TraceQuery& TraceQuery::stride(std::size_t n) {
  if (n == 0) throw std::invalid_argument("TraceQuery::stride: n must be >= 1");
  stride_ = n;
  return *this;
}

TraceQuery& TraceQuery::drop_empty(bool enabled) {
  drop_empty_ = enabled;
  return *this;
}

Trace TraceQuery::run(const Trace& input) const {
  Trace out(input.land_name(), input.sampling_interval() * static_cast<double>(stride_));
  const auto& snaps = input.snapshots();
  for (std::size_t i = 0; i < snaps.size(); i += stride_) {
    const Snapshot& snap = snaps[i];
    if (time_range_ && (snap.time < time_range_->first || snap.time >= time_range_->second)) {
      continue;
    }
    Snapshot filtered;
    filtered.time = snap.time;
    for (const auto& fix : snap.fixes) {
      if (box_ && !box_->contains(fix.pos)) continue;
      if (avatars_ && !avatars_->contains(fix.id)) continue;
      filtered.fixes.push_back(fix);
    }
    if (drop_empty_ && filtered.fixes.empty()) continue;
    out.add(std::move(filtered));
  }
  return out;
}

std::set<AvatarId> TraceQuery::visitors_of(const Trace& trace, const RegionBox& box) {
  std::set<AvatarId> out;
  for (const auto& snap : trace.snapshots()) {
    for (const auto& fix : snap.fixes) {
      if (box.contains(fix.pos)) out.insert(fix.id);
    }
  }
  return out;
}

std::map<AvatarId, double> TraceQuery::presence(const Trace& trace) {
  std::map<AvatarId, double> out;
  if (trace.empty()) return out;
  for (const auto& snap : trace.snapshots()) {
    for (const auto& fix : snap.fixes) out[fix.id] += 1.0;
  }
  const auto n = static_cast<double>(trace.size());
  for (auto& [id, count] : out) count /= n;
  return out;
}

}  // namespace slmob
