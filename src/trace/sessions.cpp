#include "trace/sessions.hpp"

#include <algorithm>
#include <map>

namespace slmob {

std::vector<Session> extract_sessions(const Trace& trace,
                                      const SessionExtractionOptions& options) {
  // Open sessions per avatar.
  std::map<AvatarId, Session> open;
  std::vector<Session> done;

  // Gap-aware mode: a coverage gap censors every open session — presence
  // across unobserved time may not be assumed, however short the gap is
  // relative to the absence threshold.
  const bool gap_aware = !trace.gaps().empty();
  bool have_prev = false;
  Seconds prev_time = 0.0;

  for (const auto& snap : trace.snapshots()) {
    if (gap_aware) {
      if (!trace.covered_at(snap.time)) continue;
      if (have_prev && trace.spans_gap(prev_time, snap.time)) {
        for (auto& [id, s] : open) done.push_back(std::move(s));
        open.clear();
      }
      have_prev = true;
      prev_time = snap.time;
    }
    // Close sessions whose avatar has been absent too long.
    for (auto it = open.begin(); it != open.end();) {
      if (snap.time - it->second.times.back() > options.absence_threshold) {
        done.push_back(std::move(it->second));
        it = open.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& fix : snap.fixes) {
      auto [it, inserted] = open.try_emplace(fix.id);
      Session& s = it->second;
      if (inserted) {
        s.avatar = fix.id;
        s.login = snap.time;
      }
      s.logout = snap.time;
      s.times.push_back(snap.time);
      s.positions.push_back(fix.pos);
    }
  }
  for (auto& [id, s] : open) done.push_back(std::move(s));

  std::sort(done.begin(), done.end(), [](const Session& a, const Session& b) {
    if (a.avatar != b.avatar) return a.avatar < b.avatar;
    return a.login < b.login;
  });
  return done;
}

void SessionStream::emit(Session&& session) {
  if (sink_) sink_(std::move(session));
}

void SessionStream::on_snapshot(const Snapshot& snap) {
  // Mirrors one iteration of extract_sessions' loop: gap censoring first,
  // then absence closes, then this snapshot's fixes.
  if (have_prev_ && gaps_->spans_gap(prev_time_, snap.time)) {
    for (auto& [id, s] : open_) emit(std::move(s));
    open_.clear();
  }
  have_prev_ = true;
  prev_time_ = snap.time;
  for (auto it = open_.begin(); it != open_.end();) {
    if (snap.time - it->second.times.back() > options_.absence_threshold) {
      emit(std::move(it->second));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& fix : snap.fixes) {
    auto [it, inserted] = open_.try_emplace(fix.id);
    Session& s = it->second;
    if (inserted) {
      s.avatar = fix.id;
      s.login = snap.time;
    }
    s.logout = snap.time;
    s.times.push_back(snap.time);
    s.positions.push_back(fix.pos);
  }
}

void SessionStream::finish() {
  for (auto& [id, s] : open_) emit(std::move(s));
  open_.clear();
}

TripMetrics trip_metrics(const Session& session, double movement_epsilon) {
  TripMetrics m;
  m.avatar = session.avatar;
  m.travel_time = session.duration();
  for (std::size_t i = 1; i < session.positions.size(); ++i) {
    const double step = session.positions[i].distance_to(session.positions[i - 1]);
    if (step > movement_epsilon) {
      m.travel_length += step;
      m.effective_travel_time += session.times[i] - session.times[i - 1];
    }
  }
  return m;
}

}  // namespace slmob
