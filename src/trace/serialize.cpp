#include "trace/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/csv.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace slmob {
namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'L', 'T', 'R'};
// Version 2 added the trailing coverage-gap block; version 3 appends the
// sampling-degradation block after it. Version-1 and -2 inputs are still
// decoded (as gap-free / degradation-free traces respectively).
constexpr std::uint16_t kVersion = 3;

}  // namespace

std::vector<std::uint8_t> encode_trace(const Trace& trace) {
  ByteWriter w;
  w.raw(kMagic);
  w.u16(kVersion);
  w.str(trace.land_name());
  w.f64(trace.sampling_interval());
  w.u32(static_cast<std::uint32_t>(trace.snapshots().size()));
  for (const auto& snap : trace.snapshots()) {
    w.f64(snap.time);
    w.u32(static_cast<std::uint32_t>(snap.fixes.size()));
    for (const auto& fix : snap.fixes) {
      w.u32(fix.id.value);
      w.f32(static_cast<float>(fix.pos.x));
      w.f32(static_cast<float>(fix.pos.y));
      w.f32(static_cast<float>(fix.pos.z));
    }
  }
  w.u32(static_cast<std::uint32_t>(trace.gaps().size()));
  for (const auto& gap : trace.gaps()) {
    w.f64(gap.start);
    w.f64(gap.end);
  }
  w.u32(static_cast<std::uint32_t>(trace.degradations().size()));
  for (const auto& d : trace.degradations()) {
    w.f64(d.start);
    w.f64(d.end);
    w.u32(d.factor);
  }
  return w.take();
}

Trace decode_trace(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const auto magic = r.raw(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic)) {
    throw DecodeError("decode_trace: bad magic");
  }
  const auto version = r.u16();
  if (version < 1 || version > 3) {
    throw DecodeError("decode_trace: unsupported version");
  }
  const std::string land = r.str();
  const double interval = r.f64();
  Trace trace(land, interval);
  const std::uint32_t snap_count = r.u32();
  for (std::uint32_t i = 0; i < snap_count; ++i) {
    Snapshot snap;
    snap.time = r.f64();
    const std::uint32_t fix_count = r.u32();
    snap.fixes.reserve(fix_count);
    for (std::uint32_t j = 0; j < fix_count; ++j) {
      AvatarFix fix;
      fix.id = AvatarId{r.u32()};
      fix.pos.x = r.f32();
      fix.pos.y = r.f32();
      fix.pos.z = r.f32();
      snap.fixes.push_back(fix);
    }
    trace.add(std::move(snap));
  }
  if (version >= 2) {
    const std::uint32_t gap_count = r.u32();
    for (std::uint32_t i = 0; i < gap_count; ++i) {
      const double start = r.f64();
      const double end = r.f64();
      trace.add_gap(start, end);
    }
  }
  if (version >= 3) {
    const std::uint32_t degradation_count = r.u32();
    for (std::uint32_t i = 0; i < degradation_count; ++i) {
      const double start = r.f64();
      const double end = r.f64();
      const std::uint32_t factor = r.u32();
      trace.add_degradation(start, end, factor);
    }
  }
  if (!r.at_end()) throw DecodeError("decode_trace: trailing bytes");
  return trace;
}

std::string trace_to_csv(const Trace& trace) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"time", "avatar", "x", "y", "z"});
  for (const auto& snap : trace.snapshots()) {
    for (const auto& fix : snap.fixes) {
      w.row({std::to_string(snap.time), std::to_string(fix.id.value),
             std::to_string(fix.pos.x), std::to_string(fix.pos.y),
             std::to_string(fix.pos.z)});
    }
  }
  for (const auto& gap : trace.gaps()) {
    w.row({"gap", std::to_string(gap.start), std::to_string(gap.end), "0", "0"});
  }
  for (const auto& d : trace.degradations()) {
    w.row({"degraded", std::to_string(d.start), std::to_string(d.end),
           std::to_string(d.factor), "0"});
  }
  return os.str();
}

Trace trace_from_csv(std::string_view text, std::string land_name,
                     Seconds sampling_interval) {
  Trace trace(std::move(land_name), sampling_interval);
  const auto rows = parse_csv(text);
  Snapshot current;
  bool have_current = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (i == 0 && !row.empty() && row[0] == "time") continue;  // header
    if (row.size() != 5) throw DecodeError("trace_from_csv: row must have 5 fields");
    if (row[0] == "gap") {
      trace.add_gap(std::stod(row[1]), std::stod(row[2]));
      continue;
    }
    if (row[0] == "degraded") {
      trace.add_degradation(std::stod(row[1]), std::stod(row[2]),
                            static_cast<std::uint32_t>(std::stoul(row[3])));
      continue;
    }
    const double t = std::stod(row[0]);
    const auto id = AvatarId{static_cast<std::uint32_t>(std::stoul(row[1]))};
    const Vec3 pos{std::stod(row[2]), std::stod(row[3]), std::stod(row[4])};
    if (!have_current || t != current.time) {
      if (have_current) trace.add(std::move(current));
      current = Snapshot{};
      current.time = t;
      have_current = true;
    }
    current.fixes.push_back({id, pos});
  }
  if (have_current) trace.add(std::move(current));
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  // Atomic: a crash mid-save must not leave a truncated .slt at the final
  // path (the paper's runs died often enough to make this a real hazard).
  write_file_atomic(path, encode_trace(trace));
}

void save_trace_csv(const Trace& trace, const std::string& path) {
  write_file_atomic(path, trace_to_csv(trace));
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return decode_trace(bytes);
}

}  // namespace slmob
