#include "trace/journal.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

namespace slmob {
namespace {

constexpr std::uint8_t kJournalMagic[4] = {'S', 'L', 'T', 'J'};
constexpr std::uint16_t kJournalVersion = 1;
constexpr std::size_t kHeaderBytes = 6;  // magic + version
// Frames are one snapshot (or less); a length beyond this is torn garbage,
// not a record.
constexpr std::uint32_t kMaxFramePayload = 16u * 1024u * 1024u;

void write_or_throw(std::FILE* file, const std::string& path,
                    std::span<const std::uint8_t> bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size() ||
      std::fflush(file) != 0) {
    throw std::runtime_error("TraceJournalWriter: write failed for " + path);
  }
}

}  // namespace

TraceJournalWriter::TraceJournalWriter(const std::string& path, Seconds planned_end)
    : path_(path), planned_end_(planned_end) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("TraceJournalWriter: cannot open " + path);
  }
  ByteWriter header;
  header.raw(kJournalMagic);
  header.u16(kJournalVersion);
  write_or_throw(file_, path_, header.bytes());
  offset_ = header.size();
}

TraceJournalWriter TraceJournalWriter::resume(const std::string& path,
                                              std::uint64_t offset, Seconds planned_end) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("TraceJournalWriter::resume: cannot stat " + path);
  if (offset < kHeaderBytes || offset > size) {
    throw std::runtime_error("TraceJournalWriter::resume: offset " +
                             std::to_string(offset) + " out of range for " + path);
  }
  // Frames past the checkpointed frontier are discarded: the deterministic
  // replay regenerates them bit-for-bit, so truncation never loses data.
  std::filesystem::resize_file(path, offset, ec);
  if (ec) throw std::runtime_error("TraceJournalWriter::resume: cannot truncate " + path);

  TraceJournalWriter writer;
  writer.path_ = path;
  writer.planned_end_ = planned_end;
  writer.file_ = std::fopen(path.c_str(), "ab");
  if (writer.file_ == nullptr) {
    throw std::runtime_error("TraceJournalWriter::resume: cannot open " + path);
  }
  writer.offset_ = offset;
  writer.begun_ = true;  // the kBegin frame lives in the retained prefix
  return writer;
}

TraceJournalWriter::TraceJournalWriter(TraceJournalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      offset_(other.offset_),
      planned_end_(other.planned_end_),
      begun_(other.begun_) {
  other.file_ = nullptr;
}

TraceJournalWriter::~TraceJournalWriter() {
  // slmob-lint: allow(checked-durability) -- destructor cannot throw; every frame was already fflush-checked on append
  if (file_ != nullptr) std::fclose(file_);
}

void TraceJournalWriter::append_frame(const ByteWriter& payload) {
  if (file_ == nullptr) {
    throw std::runtime_error("TraceJournalWriter: writer is closed");
  }
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload.bytes()));
  frame.raw(payload.bytes());
  write_or_throw(file_, path_, frame.bytes());
  offset_ += frame.size();
}

void TraceJournalWriter::begin(const std::string& land_name, Seconds sampling_interval) {
  if (begun_) throw std::logic_error("TraceJournalWriter::begin: already begun");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecord::kBegin));
  w.str(land_name);
  w.f64(sampling_interval);
  w.f64(planned_end_);
  append_frame(w);
  begun_ = true;
}

void TraceJournalWriter::append_snapshot(const Snapshot& snapshot) {
  if (!begun_) throw std::logic_error("TraceJournalWriter: record before begin()");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecord::kSnapshot));
  w.f64(snapshot.time);
  w.u32(static_cast<std::uint32_t>(snapshot.fixes.size()));
  for (const auto& fix : snapshot.fixes) {
    w.u32(fix.id.value);
    w.f32(static_cast<float>(fix.pos.x));
    w.f32(static_cast<float>(fix.pos.y));
    w.f32(static_cast<float>(fix.pos.z));
  }
  append_frame(w);
}

void TraceJournalWriter::append_gap_open(Seconds start) {
  if (!begun_) throw std::logic_error("TraceJournalWriter: record before begin()");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecord::kGapOpen));
  w.f64(start);
  append_frame(w);
}

void TraceJournalWriter::append_gap_close(Seconds start, Seconds end) {
  if (!begun_) throw std::logic_error("TraceJournalWriter: record before begin()");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecord::kGapClose));
  w.f64(start);
  w.f64(end);
  append_frame(w);
}

void TraceJournalWriter::append_degrade_open(Seconds start, std::uint32_t factor) {
  if (!begun_) throw std::logic_error("TraceJournalWriter: record before begin()");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecord::kDegradeOpen));
  w.f64(start);
  w.u32(factor);
  append_frame(w);
}

void TraceJournalWriter::append_degrade_close(Seconds start, Seconds end,
                                              std::uint32_t factor) {
  if (!begun_) throw std::logic_error("TraceJournalWriter: record before begin()");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecord::kDegradeClose));
  w.f64(start);
  w.f64(end);
  w.u32(factor);
  append_frame(w);
}

void TraceJournalWriter::append_session(Seconds time, SessionEvent event,
                                        const std::string& detail) {
  if (!begun_) throw std::logic_error("TraceJournalWriter: record before begin()");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecord::kSession));
  w.f64(time);
  w.u8(static_cast<std::uint8_t>(event));
  w.str(detail);
  append_frame(w);
}

void TraceJournalWriter::append_end(Seconds time) {
  if (!begun_) throw std::logic_error("TraceJournalWriter: record before begin()");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecord::kEnd));
  w.f64(time);
  append_frame(w);
}

JournalSalvage salvage_journal_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes ||
      !std::equal(bytes.begin(), bytes.begin() + 4, kJournalMagic)) {
    throw DecodeError("salvage_journal: bad magic");
  }
  {
    ByteReader header(bytes.subspan(4, 2));
    if (header.u16() != kJournalVersion) {
      throw DecodeError("salvage_journal: unsupported version");
    }
  }

  JournalSalvage out;
  Seconds sampling_interval = 10.0;
  Seconds last_snapshot_time = 0.0;
  Seconds last_gap_end = 0.0;
  bool have_snapshot = false;
  bool gap_pending = false;
  Seconds gap_pending_start = 0.0;
  bool degrade_pending = false;
  Seconds degrade_pending_start = 0.0;
  std::uint32_t degrade_pending_factor = 0;
  bool have_begin = false;

  std::size_t pos = kHeaderBytes;
  while (pos < bytes.size()) {
    // A frame that cannot be read in full is the torn tail; stop here. So is
    // everything after it — frame boundaries downstream of a tear cannot be
    // trusted (the length prefix itself may be garbage).
    if (bytes.size() - pos < 8) break;
    ByteReader head(bytes.subspan(pos, 8));
    const std::uint32_t len = head.u32();
    const std::uint32_t crc = head.u32();
    if (len > kMaxFramePayload || bytes.size() - pos - 8 < len) break;
    const auto payload = bytes.subspan(pos + 8, len);
    if (crc32(payload) != crc) break;

    ByteReader r(payload);
    bool frame_ok = true;
    try {
      const auto type = static_cast<JournalRecord>(r.u8());
      switch (type) {
        case JournalRecord::kBegin: {
          const std::string land = r.str();
          sampling_interval = r.f64();
          out.planned_end = r.f64();
          out.trace = Trace(land, sampling_interval);
          have_begin = true;
          break;
        }
        case JournalRecord::kSnapshot: {
          Snapshot snap;
          snap.time = r.f64();
          const std::uint32_t n = r.u32();
          snap.fixes.reserve(n);
          for (std::uint32_t i = 0; i < n; ++i) {
            AvatarFix fix;
            fix.id = AvatarId{r.u32()};
            fix.pos.x = r.f32();
            fix.pos.y = r.f32();
            fix.pos.z = r.f32();
            snap.fixes.push_back(fix);
          }
          const Seconds snap_time = snap.time;
          out.trace.add(std::move(snap));
          last_snapshot_time = snap_time;
          have_snapshot = true;
          ++out.snapshots;
          break;
        }
        case JournalRecord::kGapOpen:
          gap_pending = true;
          gap_pending_start = r.f64();
          break;
        case JournalRecord::kGapClose: {
          const Seconds start = r.f64();
          const Seconds end = r.f64();
          out.trace.add_gap(start, end);
          last_gap_end = end;
          gap_pending = false;
          break;
        }
        case JournalRecord::kSession:
          ++out.session_events;
          break;
        case JournalRecord::kDegradeOpen:
          degrade_pending = true;
          degrade_pending_start = r.f64();
          degrade_pending_factor = r.u32();
          break;
        case JournalRecord::kDegradeClose: {
          const Seconds start = r.f64();
          const Seconds end = r.f64();
          const std::uint32_t factor = r.u32();
          out.trace.add_degradation(start, end, factor);
          degrade_pending = false;
          break;
        }
        case JournalRecord::kEnd:
          out.clean_end = true;
          break;
        default:
          frame_ok = false;
          break;
      }
      if (type != JournalRecord::kEnd && out.clean_end) out.clean_end = false;
    } catch (const std::exception&) {
      // A CRC-valid frame that still fails to decode (or violates trace
      // ordering) means the writer itself was broken; treat it as the tear.
      frame_ok = false;
    }
    if (!frame_ok) break;
    if (!have_begin) throw DecodeError("salvage_journal: first frame is not kBegin");
    pos += 8 + len;
    ++out.frames_read;
  }
  if (!have_begin) throw DecodeError("salvage_journal: no intact begin frame");
  out.bytes_kept = pos;
  out.torn = pos < bytes.size();

  // A journal that did not finish with kEnd belongs to a run that died; the
  // remainder of the planned run is censored with a trailing gap so analyses
  // never mistake "the process was killed" for "the land emptied". Outages
  // before the first snapshot are simply a later trace start (the crawler's
  // own convention), so an empty salvaged trace carries no gap.
  if (!out.clean_end && have_snapshot) {
    const Seconds start = gap_pending
                              ? gap_pending_start
                              : std::max(last_snapshot_time + sampling_interval,
                                         last_gap_end);
    // A degradation window left open by the crash closes at the censoring
    // boundary: the degraded snapshots already captured stay rate-corrected,
    // and the unrun remainder is covered by the trailing gap instead.
    if (degrade_pending && degrade_pending_start < start) {
      out.trace.add_degradation(degrade_pending_start, start, degrade_pending_factor);
    }
    const Seconds end = std::max(out.planned_end, start + sampling_interval);
    out.trace.add_gap(start, end);
  }
  return out;
}

JournalSalvage salvage_journal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("salvage_journal: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  return salvage_journal_bytes(bytes);
}

}  // namespace slmob
