// Mobility traces.
//
// A Trace is what the crawler produces and what every analysis consumes: a
// time-ordered sequence of snapshots, each listing the position of every
// avatar seen on the target land at that instant. This mirrors the paper's
// methodology (snapshot every tau = 10 s of all users on the land).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"
#include "util/vec3.hpp"

namespace slmob {

// One avatar position fix inside a snapshot.
struct AvatarFix {
  AvatarId id;
  Vec3 pos;
};

// All avatars observed on the land at one instant.
struct Snapshot {
  Seconds time{0.0};
  std::vector<AvatarFix> fixes;

  // Position of `id` in this snapshot, if present.
  [[nodiscard]] std::optional<Vec3> find(AvatarId id) const;
};

struct TraceSummary {
  std::size_t unique_users{0};
  double avg_concurrent{0.0};
  std::size_t max_concurrent{0};
  Seconds duration{0.0};
  std::size_t snapshot_count{0};
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string land_name, Seconds sampling_interval)
      : land_name_(std::move(land_name)), sampling_interval_(sampling_interval) {}

  // Appends a snapshot; snapshots must arrive in non-decreasing time order
  // (throws std::invalid_argument otherwise).
  void add(Snapshot snapshot);

  [[nodiscard]] const std::string& land_name() const { return land_name_; }
  [[nodiscard]] Seconds sampling_interval() const { return sampling_interval_; }
  [[nodiscard]] const std::vector<Snapshot>& snapshots() const { return snapshots_; }
  [[nodiscard]] bool empty() const { return snapshots_.empty(); }
  [[nodiscard]] std::size_t size() const { return snapshots_.size(); }

  [[nodiscard]] TraceSummary summary() const;

  // All distinct avatar ids observed anywhere in the trace, ascending.
  [[nodiscard]] std::vector<AvatarId> unique_avatars() const;

  // Returns a copy restricted to snapshots with time in [t0, t1).
  [[nodiscard]] Trace slice(Seconds t0, Seconds t1) const;

  // Removes fixes at the origin {0,0,0}. The SL protocol reports sitting
  // avatars at the origin (a quirk the paper §3 documents); analyses must
  // not interpret those as positions. Returns the number of fixes dropped.
  std::size_t strip_sitting_fixes();

 private:
  std::string land_name_;
  Seconds sampling_interval_{10.0};
  std::vector<Snapshot> snapshots_;
};

}  // namespace slmob
