// Mobility traces.
//
// A Trace is what the crawler produces and what every analysis consumes: a
// time-ordered sequence of snapshots, each listing the position of every
// avatar seen on the target land at that instant. This mirrors the paper's
// methodology (snapshot every tau = 10 s of all users on the land).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"
#include "util/vec3.hpp"

namespace slmob {

// One avatar position fix inside a snapshot.
struct AvatarFix {
  AvatarId id;
  Vec3 pos;
};

// All avatars observed on the land at one instant.
struct Snapshot {
  Seconds time{0.0};
  std::vector<AvatarFix> fixes;

  // Position of `id` in this snapshot, if present.
  [[nodiscard]] std::optional<Vec3> find(AvatarId id) const;
};

// A half-open interval [start, end) during which the crawler could not
// observe the land (disconnected, mid-relogin, or feeding on stale data).
// Analyses must treat these as censoring boundaries: nothing may be inferred
// about presence, contacts or positions inside a gap.
struct CoverageGap {
  Seconds start{0.0};
  Seconds end{0.0};

  [[nodiscard]] Seconds length() const { return end - start; }
  [[nodiscard]] bool contains(Seconds t) const { return t >= start && t < end; }
  friend bool operator==(const CoverageGap&, const CoverageGap&) = default;
};

// A half-open interval [start, end) during which the crawler deliberately
// sampled slower than the nominal interval (overload protection halved the
// snapshot rate instead of dropping data). Unlike a CoverageGap the land WAS
// observed — just at `factor` times the nominal interval — so analyses must
// rate-correct time-weighted quantities rather than censor the window.
struct SamplingDegradation {
  Seconds start{0.0};
  Seconds end{0.0};
  // Effective-interval multiplier (2 = half rate, 4 = quarter rate). Always
  // an integer >= 2; stored as u32 on the wire.
  std::uint32_t factor{2};

  [[nodiscard]] Seconds length() const { return end - start; }
  [[nodiscard]] bool contains(Seconds t) const { return t >= start && t < end; }
  friend bool operator==(const SamplingDegradation&, const SamplingDegradation&) = default;
};

struct TraceSummary {
  std::size_t unique_users{0};
  double avg_concurrent{0.0};
  std::size_t max_concurrent{0};
  Seconds duration{0.0};
  std::size_t snapshot_count{0};
  std::size_t gap_count{0};
  Seconds gap_seconds{0.0};
  std::size_t degradation_count{0};
  Seconds degraded_seconds{0.0};
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string land_name, Seconds sampling_interval)
      : land_name_(std::move(land_name)), sampling_interval_(sampling_interval) {}

  // Appends a snapshot; snapshots must arrive in non-decreasing time order
  // (throws std::invalid_argument otherwise).
  void add(Snapshot snapshot);

  // Records a coverage gap [start, end). Gaps must be well-formed
  // (start < end) and arrive in order, non-overlapping (throws
  // std::invalid_argument otherwise).
  void add_gap(Seconds start, Seconds end);

  // Records a sampling-degradation window [start, end) with the given
  // effective-interval factor. Windows must be well-formed (start < end,
  // factor >= 2) and arrive in order, non-overlapping (throws
  // std::invalid_argument otherwise). Degradations may overlap coverage
  // gaps: a crawler can degrade, then lose the land entirely.
  void add_degradation(Seconds start, Seconds end, std::uint32_t factor);

  [[nodiscard]] const std::vector<SamplingDegradation>& degradations() const {
    return degradations_;
  }
  // Effective-interval multiplier at `t`: the factor of the covering
  // degradation window, or 1 when sampling ran at the nominal rate.
  [[nodiscard]] std::uint32_t degradation_factor_at(Seconds t) const;
  // Total degraded time.
  [[nodiscard]] Seconds degraded_seconds() const;

  [[nodiscard]] const std::vector<CoverageGap>& gaps() const { return gaps_; }
  // True iff `t` does not fall inside any recorded gap.
  [[nodiscard]] bool covered_at(Seconds t) const;
  // True iff the open interval (t0, t1) intersects any gap — i.e. an
  // observation stretching from t0 to t1 would bridge uncovered time.
  [[nodiscard]] bool spans_gap(Seconds t0, Seconds t1) const;
  // Total uncovered time.
  [[nodiscard]] Seconds gap_seconds() const;

  [[nodiscard]] const std::string& land_name() const { return land_name_; }
  [[nodiscard]] Seconds sampling_interval() const { return sampling_interval_; }
  [[nodiscard]] const std::vector<Snapshot>& snapshots() const { return snapshots_; }
  [[nodiscard]] bool empty() const { return snapshots_.empty(); }
  [[nodiscard]] std::size_t size() const { return snapshots_.size(); }

  [[nodiscard]] TraceSummary summary() const;

  // All distinct avatar ids observed anywhere in the trace, ascending.
  [[nodiscard]] std::vector<AvatarId> unique_avatars() const;

  // Returns a copy restricted to snapshots with time in [t0, t1); coverage
  // gaps are clipped to the window and carried over.
  [[nodiscard]] Trace slice(Seconds t0, Seconds t1) const;

  // Removes fixes at the origin {0,0,0}. The SL protocol reports sitting
  // avatars at the origin (a quirk the paper §3 documents); analyses must
  // not interpret those as positions. Returns the number of fixes dropped.
  std::size_t strip_sitting_fixes();

 private:
  std::string land_name_;
  Seconds sampling_interval_{10.0};
  std::vector<Snapshot> snapshots_;
  std::vector<CoverageGap> gaps_;  // ordered, non-overlapping
  std::vector<SamplingDegradation> degradations_;  // ordered, non-overlapping
};

}  // namespace slmob
