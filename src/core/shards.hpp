// Sharded multi-land simulation engine.
//
// A shard is one complete measurement rig — world, sim server, network,
// client/crawler, monitors — for one land, and is a pure function of its
// config (all randomness flows from the shard's seeds). Shards share no
// state, so a multi-land study runs them concurrently on a thread pool and
// every shard's trace is bit-identical to a serial run at any thread count.
//
// Two execution modes:
//  * in-memory (run_sharded with an empty checkpoint_dir): fastest, nothing
//    on disk;
//  * durable (checkpoint_dir set): each shard runs journaled + checkpointed
//    in its own subdirectory (shard-NN-<land>), so a killed multi-land run
//    resumes per shard via resume_sharded — shards that already finished
//    replay from their checkpoint tail only.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/experiment.hpp"

namespace slmob {

// Raw capture of one shard. The trace is exactly what the shard's
// measurement instrument recorded (not sitting-stripped), which is what
// determinism digests compare.
struct ShardResult {
  LandArchetype archetype{LandArchetype::kIsleOfView};
  std::uint64_t seed{0};
  Trace trace;
  CrawlerStats crawler_stats;
  WorldStats world_stats;
  SimServerStats server_stats;
  NetworkStats network_stats;
  // Crawler-client transport stats, summed over every circuit (relogins
  // retire circuits); zero-initialised for ground-truth-only shards.
  CircuitStats circuit_stats;
  bool killed{false};                 // durable runs only
  std::size_t checkpoints_written{0}; // durable runs only
  // Durable runs: where the finished trace should land, recorded in the
  // shard's checkpoint so a resume needs no re-specification.
  std::string out_path;
};

struct ShardRunOptions {
  // Total worker threads across shards, counting the caller (ThreadPool
  // semantics): 1 = serial, 0 = SLMOB_THREADS env var / hardware default.
  std::size_t threads{0};
  // When set, every shard runs journaled + checkpointed under
  // <checkpoint_dir>/shard-NN-<land>/.
  std::string checkpoint_dir;
  Seconds checkpoint_every{300.0};
  // Optional, parallel to the shard configs: destination trace path per
  // shard, stamped into each checkpoint (surfaced again on resume).
  std::vector<std::string> out_paths;
  // Test/bench hook: durable shards stop abruptly at this virtual time,
  // leaving resumable on-disk state (see DurableRunOptions::kill_at).
  std::optional<Seconds> kill_at;
};

// Subdirectory name of shard `index`: "shard-03-dance" etc. Zero-padded so
// lexicographic directory order equals shard order.
[[nodiscard]] std::string shard_dir_name(std::size_t index, LandArchetype archetype);

// Runs every shard (one per config) and returns results in config order.
// Results are bit-identical for any `threads` value.
std::vector<ShardResult> run_sharded(const std::vector<ExperimentConfig>& shards,
                                     const ShardRunOptions& options = {});

// Resumes a killed run_sharded from its checkpoint directory: accepts either
// a directory of shard-* subdirectories or a single shard's own directory
// (one checkpoint.slck). Shards resume concurrently; results are in shard
// (directory) order and bit-identical to the never-killed run's.
std::vector<ShardResult> resume_sharded(const std::string& checkpoint_dir,
                                        std::size_t threads = 0,
                                        std::optional<Seconds> kill_at = std::nullopt);

// Full experiments (simulation + analysis pipeline) for every config,
// sharded across `threads`. Each cell's analysis runs single-threaded inside
// its shard — the parallelism budget is spent across cells, as in `slmob
// sweep`. Results are in config order and thread-count independent.
std::vector<ExperimentResults> run_experiments_sharded(
    const std::vector<ExperimentConfig>& shards, std::size_t threads = 0);

}  // namespace slmob
