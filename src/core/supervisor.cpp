#include "core/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/wallclock.hpp"

namespace slmob {

const char* shard_phase_name(ShardPhase phase) {
  switch (phase) {
    case ShardPhase::kIdle: return "idle";
    case ShardPhase::kRunning: return "running";
    case ShardPhase::kStalled: return "stalled";
    case ShardPhase::kBackoff: return "backoff";
    case ShardPhase::kCompleted: return "completed";
    case ShardPhase::kFailedPartial: return "failed-partial";
  }
  return "unknown";
}

namespace {

// Watchdog/backoff timing measures the host, not the simulation, and goes
// through the sanctioned wall-clock seam so tests can mock it.
struct Clock {
  using time_point = slmob::wallclock::TimePoint;
  static time_point now() { return slmob::wallclock::now(); }
};
using slmob::wallclock::ms_since;
using slmob::wallclock::sleep_ms;

// Interrupts that unwind a shard's run loop to its crash barrier. They model
// process death, so they deliberately skip all trace/journal finalization —
// the on-disk state they leave is exactly a SIGKILL's.
struct InjectedCrash : std::runtime_error {
  using std::runtime_error::runtime_error;
};
struct InjectedStall : std::runtime_error {
  using std::runtime_error::runtime_error;
};
struct WatchdogAbort : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Heartbeat channel between one shard's loop and the watchdog thread. The
// shard publishes (attempt, heartbeat, phase); the watchdog only ever sets
// `cancel`. Addresses must stay stable while threads run, so run_supervised
// holds these behind unique_ptr.
struct ShardRuntime {
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<std::uint64_t> attempt{0};
  std::atomic<bool> cancel{false};
  std::atomic<int> phase{static_cast<int>(ShardPhase::kIdle)};
};

// Everything one shard's supervision loop needs, owned by the shard's
// worker thread (only ShardRuntime is shared).
struct ShardCtx {
  const ExperimentConfig& config;
  const SupervisorOptions& opt;
  std::string dir;       // this shard's checkpoint directory
  std::string out_path;  // destination trace path ("" = none)
  ShardRuntime& rt;
  ShardHealth& health;

  // Shard-fault windows in start order; `next_injection` indexes the first
  // window that has not fired yet. The index persists across restart
  // attempts: a fired fault never re-arms, like a real crash that does not
  // recur on replay.
  std::vector<FaultWindow> injections;
  std::size_t next_injection{0};

  // Recovery-latency bookkeeping: set when a failure is contained, resolved
  // when the restarted shard completes its first segment.
  std::optional<std::size_t> pending_recovery_event;
  Clock::time_point recovery_t0{};

  Seconds heartbeat_every{60.0};  // opt.heartbeat_every, sanitised

  [[nodiscard]] std::string journal_file() const { return dir + "/" + kJournalFileName; }

  void set_phase(ShardPhase p) {
    rt.phase.store(static_cast<int>(p), std::memory_order_relaxed);
    health.phase = p;
  }
  void beat() { rt.heartbeat.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] bool canceled() const {
    return rt.cancel.load(std::memory_order_relaxed);
  }
};

// One wired rig plus its journal, ready to run from `from`.
struct ShardRig {
  std::unique_ptr<Testbed> bed;
  std::optional<TraceJournalWriter> writer;
  Seconds from{0.0};
};

std::string describe(const char* what, Seconds at) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s at t=%.0f s", what, at);
  return buf;
}

// Silent replay to the checkpoint frontier, sub-stepped so the watchdog
// keeps seeing heartbeats (a 20 h replay must not look like a stall).
void replay_to(ShardCtx& c, Testbed& bed, Seconds until) {
  Seconds t = 0.0;
  while (t < until) {
    if (c.canceled()) {
      throw WatchdogAbort("watchdog canceled shard during checkpoint replay");
    }
    t = std::min(until, t + c.heartbeat_every);
    bed.run_until(t);
    c.beat();
  }
}

// Builds the rig for one attempt: resume from the best usable checkpoint
// generation, else cold-start. Corrupt checkpoints and replay-verify
// mismatches are contained here — they demote the attempt to a cold
// restart (with a diagnostic) instead of failing the shard.
ShardRig prepare_rig(ShardCtx& c) {
  const CheckpointLoadResult loaded = try_load_checkpoint(c.dir);
  if (!loaded.diagnostic.empty()) {
    c.health.last_error = loaded.diagnostic;
    log_warn("supervisor", "shard checkpoint rejected: " + loaded.diagnostic);
  }
  if (loaded.state) {
    try {
      ShardRig rig;
      rig.bed = std::make_unique<Testbed>(make_testbed_config(c.config));
      replay_to(c, *rig.bed, loaded.state->time);
      verify_checkpoint_replay(*loaded.state, *rig.bed);
      rig.writer.emplace(TraceJournalWriter::resume(
          c.journal_file(), loaded.state->journal_offset, c.config.duration));
      rig.from = loaded.state->time;
      if (loaded.used_fallback) c.health.used_fallback_checkpoint = true;
      return rig;
    } catch (const WatchdogAbort&) {
      throw;
    } catch (const std::exception& e) {
      c.health.last_error =
          std::string("checkpoint unusable, cold-restarting: ") + e.what();
      log_warn("supervisor", c.health.last_error);
      ++c.health.cold_restarts;
    }
  }
  if (c.rt.attempt.load(std::memory_order_relaxed) > 1 && !loaded.state) {
    // A restart that found no loadable checkpoint at all (too early for the
    // first save, or every generation corrupt) replays nothing: count it.
    ++c.health.cold_restarts;
  }
  ShardRig rig;
  rig.bed = std::make_unique<Testbed>(make_testbed_config(c.config));
  rig.writer.emplace(c.journal_file(), c.config.duration);  // truncates
  rig.from = 0.0;
  return rig;
}

// Fires the next due shard fault. Marks it fired *before* throwing so a
// restarted attempt sails past the window, and records the fault event with
// the journal frontier (the bench gates frames lost per crash against it).
void fire_injection(ShardCtx& c, Testbed& bed, TraceJournalWriter& writer,
                    const FaultWindow& w) {
  ++c.next_injection;  // at most once per run
  ShardFaultEvent ev;
  ev.at = w.start;
  ev.snapshots_at_fault = bed.crawler()->stats().snapshots_taken;
  ev.journal_offset_at_fault = writer.offset();

  if (w.kind == FaultKind::kShardCrash) {
    ev.kind = ShardFaultEvent::Kind::kInjectedCrash;
    ev.what = describe("injected shard crash", w.start);
    c.health.events.push_back(ev);
    ++c.health.crashes;
    throw InjectedCrash(ev.what);
  }

  // Stall: stop heartbeating and wedge until the watchdog cancels us. With
  // the watchdog disabled the stall would hang the run forever, so it
  // converts to an immediate failure instead.
  ev.kind = ShardFaultEvent::Kind::kInjectedStall;
  c.set_phase(ShardPhase::kStalled);
  ++c.health.stalls;
  if (c.opt.watchdog_timeout_ms <= 0.0) {
    ev.detect_ms = 0.0;
    ev.what = describe("injected shard stall (watchdog disabled)", w.start);
    c.health.events.push_back(ev);
    throw InjectedStall(ev.what);
  }
  const Clock::time_point stalled_at = Clock::now();
  while (!c.canceled()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ev.detect_ms = ms_since(stalled_at);
  ++c.health.watchdog_aborts;
  ev.what = describe("injected shard stall", w.start) + " (watchdog canceled after " +
            std::to_string(static_cast<long>(ev.detect_ms)) + " ms)";
  c.health.events.push_back(ev);
  throw InjectedStall(ev.what);
}

// Runs one attempt from rig.from to completion (or until a fault unwinds
// it). Segment boundaries are the union of checkpoint boundaries, heartbeat
// sub-steps and pending fault-injection times; boundaries never change
// simulation results, only where this loop regains control.
DurableRunResult run_attempt(ShardCtx& c, ShardRig& rig) {
  Testbed& bed = *rig.bed;
  TraceJournalWriter& writer = *rig.writer;
  // Attach only now that the rig sits at its final address — the writer
  // was moved out of prepare_rig, so any pointer taken there would dangle.
  bed.crawler()->attach_journal(&writer);
  const Seconds duration = c.config.duration;
  const Seconds every = c.opt.checkpoint_every;

  DurableRunResult result;
  result.journal_path = writer.path();

  Seconds t = rig.from;
  while (t < duration) {
    if (c.canceled()) throw WatchdogAbort("watchdog canceled shard");
    if (c.next_injection < c.injections.size() &&
        c.injections[c.next_injection].start <= t + 1e-9) {
      fire_injection(c, bed, writer, c.injections[c.next_injection]);
    }

    Seconds next = std::min(duration, t + c.heartbeat_every);
    if (every > 0.0) {
      next = std::min(next, every * (std::floor(t / every + 1e-9) + 1.0));
    }
    if (c.next_injection < c.injections.size()) {
      const Seconds due = c.injections[c.next_injection].start;
      if (due > t && due < next) next = due;
    }

    bed.run_until(next);
    t = next;
    c.beat();
    if (c.pending_recovery_event) {
      // First completed segment after a restart: the shard is ticking again.
      c.health.events[*c.pending_recovery_event].recovery_ms = ms_since(c.recovery_t0);
      c.pending_recovery_event.reset();
    }
    if (c.opt.test_segment_delay_ms > 0.0) sleep_ms(c.opt.test_segment_delay_ms);

    if (every > 0.0 && t < duration &&
        std::abs(t / every - std::round(t / every)) < 1e-9) {
      CheckpointState ck;
      ck.archetype = c.config.archetype;
      ck.duration = duration;
      ck.seed = c.config.seed;
      ck.fault_scenario = c.config.fault_scenario;
      ck.fault_seed = c.config.fault_seed;
      ck.out_path = c.out_path;
      ck.checkpoint_every = every;
      ck.time = t;
      ck.journal_offset = writer.offset();
      fill_checkpoint_witness(ck, bed);
      save_checkpoint_rotating(ck, c.dir);
      ++result.checkpoints_written;
      ++c.health.checkpoints_written;
    }
  }

  result.trace = bed.crawler()->take_trace();
  writer.append_end(bed.engine().now());
  result.crawler_stats = bed.crawler()->stats();
  result.world_stats = bed.world().stats();
  result.server_stats = bed.server().stats();
  result.network_stats = bed.network().stats();
  if (bed.client() != nullptr) {
    result.circuit_stats = bed.client()->total_circuit_stats();
  }
  return result;
}

// Retry budget exhausted: salvage whatever the journal holds. The salvaged
// trace carries a trailing CoverageGap to the planned end of the run, so
// downstream analysis sees the unrun remainder as censored, not as empty
// calm.
ShardResult degrade_to_partial(ShardCtx& c) {
  c.health.failed_partial = true;
  c.set_phase(ShardPhase::kFailedPartial);
  log_warn("supervisor", "shard retry budget exhausted, degrading to failed-partial: " +
                             c.health.last_error);

  ShardResult result;
  result.archetype = c.config.archetype;
  result.seed = c.config.seed;
  result.out_path = c.out_path;
  result.checkpoints_written = c.health.checkpoints_written;
  try {
    JournalSalvage salvage = salvage_journal(c.journal_file());
    result.trace = std::move(salvage.trace);
  } catch (const std::exception& e) {
    // The journal never held one complete record: the entire planned run is
    // one censored gap.
    const TestbedConfig tb = make_testbed_config(c.config);
    Trace empty(archetype_name(c.config.archetype), tb.crawler.sample_interval);
    empty.add_gap(0.0, c.config.duration);
    result.trace = std::move(empty);
    c.health.last_error += std::string("; journal unsalvageable: ") + e.what();
  }
  return result;
}

// The crash barrier: runs attempts until the shard completes or its retry
// budget is exhausted. Everything a shard can throw is contained here; only
// misconfiguration (no crawler) escapes to the caller.
ShardResult supervise_shard(ShardCtx& c) {
  for (;;) {
    c.rt.attempt.fetch_add(1, std::memory_order_relaxed);
    c.rt.cancel.store(false, std::memory_order_relaxed);
    c.set_phase(ShardPhase::kRunning);
    try {
      ShardRig rig = prepare_rig(c);
      DurableRunResult durable = run_attempt(c, rig);
      c.set_phase(ShardPhase::kCompleted);
      ShardResult result;
      result.archetype = c.config.archetype;
      result.seed = c.config.seed;
      result.out_path = c.out_path;
      result.trace = std::move(durable.trace);
      result.crawler_stats = durable.crawler_stats;
      result.world_stats = durable.world_stats;
      result.server_stats = durable.server_stats;
      result.network_stats = durable.network_stats;
      result.circuit_stats = durable.circuit_stats;
      result.checkpoints_written = c.health.checkpoints_written;
      return result;
    } catch (const InjectedCrash& e) {
      c.health.last_error = e.what();
    } catch (const InjectedStall& e) {
      c.health.last_error = e.what();
    } catch (const WatchdogAbort& e) {
      ++c.health.watchdog_aborts;
      c.health.last_error = e.what();
      c.health.events.push_back({ShardFaultEvent::Kind::kWatchdogAbort,
                                 /*at=*/-1.0, 0, 0, -1.0, -1.0, e.what()});
    } catch (const std::exception& e) {
      // A real bug or I/O failure — contained exactly like an injected
      // crash, so one broken shard cannot take down the run.
      ++c.health.crashes;
      c.health.last_error = e.what();
      c.health.events.push_back({ShardFaultEvent::Kind::kException,
                                 /*at=*/-1.0, 0, 0, -1.0, -1.0, e.what()});
    }

    c.recovery_t0 = Clock::now();
    c.pending_recovery_event =
        c.health.events.empty() ? std::optional<std::size_t>{}
                                : std::optional<std::size_t>{c.health.events.size() - 1};

    if (c.health.restarts >= c.opt.max_restarts) {
      return degrade_to_partial(c);
    }
    ++c.health.restarts;
    c.set_phase(ShardPhase::kBackoff);
    const double exp =
        std::ldexp(c.opt.backoff_base_ms,
                   static_cast<int>(std::min<std::uint64_t>(c.health.restarts - 1, 20)));
    sleep_ms(std::min(exp, c.opt.backoff_max_ms));
  }
}

// Deadline watchdog: one thread polling every shard's (attempt, heartbeat)
// epoch. A shard whose epoch has not moved for `timeout_ms` wall ms while
// it claims to be running (or is wedged in a stall) gets canceled; the
// shard observes the flag at its next boundary — or, for a true stall, in
// its wedge loop — and unwinds to the crash barrier.
void watchdog_loop(std::vector<std::unique_ptr<ShardRuntime>>& runtimes,
                   double timeout_ms, std::atomic<bool>& done) {
  struct Seen {
    std::uint64_t attempt{0};
    std::uint64_t heartbeat{0};
    Clock::time_point since{Clock::now()};
  };
  std::vector<Seen> seen(runtimes.size());
  const double poll_ms = std::clamp(timeout_ms / 4.0, 1.0, 50.0);
  while (!done.load(std::memory_order_relaxed)) {
    sleep_ms(poll_ms);
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < runtimes.size(); ++i) {
      ShardRuntime& rt = *runtimes[i];
      const std::uint64_t a = rt.attempt.load(std::memory_order_relaxed);
      const std::uint64_t h = rt.heartbeat.load(std::memory_order_relaxed);
      if (a != seen[i].attempt || h != seen[i].heartbeat) {
        seen[i] = {a, h, now};
        continue;
      }
      const auto phase = static_cast<ShardPhase>(rt.phase.load(std::memory_order_relaxed));
      if (phase != ShardPhase::kRunning && phase != ShardPhase::kStalled) {
        seen[i].since = now;  // idle/backoff/finished shards are never stale
        continue;
      }
      const double stale_ms =
          std::chrono::duration<double, std::milli>(now - seen[i].since).count();
      if (stale_ms >= timeout_ms &&
          a == rt.attempt.load(std::memory_order_relaxed)) {
        rt.cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace

SupervisedRun run_supervised(const std::vector<ExperimentConfig>& shards,
                             const SupervisorOptions& options) {
  if (options.checkpoint_dir.empty()) {
    throw std::invalid_argument("run_supervised: checkpoint_dir required");
  }
  if (!options.out_paths.empty() && options.out_paths.size() != shards.size()) {
    throw std::invalid_argument("run_supervised: out_paths must match shard count");
  }
  std::filesystem::create_directories(options.checkpoint_dir);

  SupervisedRun run;
  run.shards.resize(shards.size());
  run.health.resize(shards.size());
  std::vector<std::unique_ptr<ShardRuntime>> runtimes;
  runtimes.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    runtimes.push_back(std::make_unique<ShardRuntime>());
  }

  std::atomic<bool> done{false};
  std::thread watchdog;
  if (options.watchdog_timeout_ms > 0.0) {
    watchdog = std::thread(
        [&] { watchdog_loop(runtimes, options.watchdog_timeout_ms, done); });
  }

  ThreadPool pool(options.threads);
  std::exception_ptr error;
  try {
    parallel_for(pool, shards.size(), [&](std::size_t i) {
      ShardCtx c{shards[i],
                 options,
                 options.checkpoint_dir + "/" + shard_dir_name(i, shards[i].archetype),
                 options.out_paths.empty() ? std::string{} : options.out_paths[i],
                 *runtimes[i],
                 run.health[i],
                 {},
                 0,
                 {},
                 {},
                 options.heartbeat_every > 0.0 ? options.heartbeat_every
                                               : shards[i].duration};
      c.health.index = i;
      c.health.archetype = shards[i].archetype;
      c.health.seed = shards[i].seed;
      c.injections = make_testbed_config(shards[i]).faults.shard_faults();
      std::filesystem::create_directories(c.dir);
      run.shards[i] = supervise_shard(c);
    });
  } catch (...) {
    error = std::current_exception();
  }
  done.store(true, std::memory_order_relaxed);
  if (watchdog.joinable()) watchdog.join();
  if (error) std::rethrow_exception(error);
  return run;
}

}  // namespace slmob
