#include "core/report.hpp"

#include <cstdio>
#include <sstream>

#include "util/fileio.hpp"

namespace slmob {
namespace {

std::string fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

void quantile_row(std::ostringstream& os, const std::string& name, const Ecdf& dist,
                  int decimals = 0) {
  if (dist.empty()) {
    os << "| " << name << " | 0 | - | - | - | - |\n";
    return;
  }
  os << "| " << name << " | " << dist.size() << " | " << fmt(dist.quantile(0.1), decimals)
     << " | " << fmt(dist.median(), decimals) << " | " << fmt(dist.quantile(0.9), decimals)
     << " | " << fmt(dist.max(), decimals) << " |\n";
}

void series_table(std::ostringstream& os, const std::string& name, const Ecdf& dist,
                  std::size_t points) {
  if (dist.empty()) return;
  os << "\n<details><summary>" << name << " CCDF</summary>\n\n";
  os << "| x | 1 - F(x) |\n|---|---|\n";
  for (const auto& p : dist.ccdf_log_series(points, 1.0)) {
    os << "| " << fmt(p.x, 1) << " | " << fmt(p.y, 4) << " |\n";
  }
  os << "\n</details>\n";
}

}  // namespace

std::string render_report(const ExperimentResults& results, const ReportOptions& options) {
  std::ostringstream os;
  const TraceSummary& s = results.summary;

  os << "# Mobility measurement report: " << results.trace.land_name() << "\n\n";
  os << "## Trace\n\n";
  os << "| quantity | value |\n|---|---|\n";
  os << "| duration | " << fmt(s.duration / kSecondsPerHour, 2) << " h |\n";
  os << "| snapshots | " << s.snapshot_count << " (every "
     << fmt(results.trace.sampling_interval(), 0) << " s) |\n";
  os << "| unique visitors | " << s.unique_users << " |\n";
  os << "| avg concurrent | " << fmt(s.avg_concurrent) << " |\n";
  os << "| max concurrent | " << s.max_concurrent << " |\n";
  os << "| logins (world) | " << results.world_stats.total_logins << " ("
     << results.world_stats.rejected_logins << " rejected at capacity) |\n";
  if (results.crawler_stats.snapshots_taken > 0) {
    os << "| crawler re-logins | " << results.crawler_stats.relogins << " |\n";
  }

  os << "\n## Transport\n\n";
  os << "| quantity | value |\n|---|---|\n";
  os << "| datagrams sent | " << results.network_stats.sent << " ("
     << results.network_stats.lost << " lost, " << results.network_stats.fault_dropped
     << " dropped by faults) |\n";
  os << "| circuit packets | " << results.circuit_stats.packets_sent << " sent / "
     << results.circuit_stats.packets_received << " received |\n";
  os << "| retransmits | " << results.circuit_stats.retransmits << " ("
     << results.circuit_stats.rto_backoffs << " RTO backoffs, "
     << results.circuit_stats.reliable_failures << " reliable failures) |\n";
  os << "| RTT samples | " << results.circuit_stats.rtt_samples << " |\n";

  os << "\n## Overload & degradation\n\n";
  os << "| quantity | value |\n|---|---|\n";
  os << "| logins rejected (admission headroom) | "
     << results.server_stats.logins_rejected_overload << " |\n";
  os << "| messages shed (server tick budget) | " << results.server_stats.messages_shed
     << " |\n";
  os << "| datagrams shed (network backpressure) | "
     << results.network_stats.shed_session << " session / "
     << results.network_stats.shed_snapshot << " snapshot |\n";
  os << "| circuit sends deferred | " << results.circuit_stats.deferred_sends << " |\n";
  os << "| sampling degradations | " << results.crawler_stats.degrade_escalations
     << " escalations / " << results.crawler_stats.degrade_recoveries
     << " recoveries |\n";
  os << "| degraded snapshots | " << results.crawler_stats.degraded_snapshots << " ("
     << fmt(results.summary.degraded_seconds, 0) << " s at reduced rate) |\n";

  os << "\n## Contact opportunities\n\n";
  os << "| metric | n | p10 | median | p90 | max |\n|---|---|---|---|---|---|\n";
  for (const auto& [range, contacts] : results.contacts) {
    const std::string tag = " (r=" + fmt(range, 0) + "m, s)";
    quantile_row(os, "contact time" + tag, contacts.contact_times);
    quantile_row(os, "inter-contact time" + tag, contacts.inter_contact_times);
    quantile_row(os, "first contact time" + tag, contacts.first_contact_times);
  }

  os << "\n## Line-of-sight networks\n\n";
  os << "| metric | n | p10 | median | p90 | max |\n|---|---|---|---|---|---|\n";
  for (const auto& [range, graphs] : results.graphs) {
    const std::string tag = " (r=" + fmt(range, 0) + "m)";
    quantile_row(os, "node degree" + tag, graphs.degrees);
    quantile_row(os, "diameter" + tag, graphs.diameters);
    quantile_row(os, "clustering" + tag, graphs.clustering, 2);
  }
  for (const auto& [range, graphs] : results.graphs) {
    os << "- isolated users at r=" << fmt(range, 0) << "m: "
       << fmt(graphs.isolated_fraction * 100.0) << "%\n";
  }

  os << "\n## Space and trips\n\n";
  os << "- empty " << fmt(results.zones.cell_size, 0)
     << "m cells: " << fmt(results.zones.empty_fraction * 100.0) << "%\n";
  os << "- busiest cell: " << results.zones.max_occupancy << " users\n\n";
  os << "| metric | n | p10 | median | p90 | max |\n|---|---|---|---|---|---|\n";
  quantile_row(os, "travel length (m)", results.trips.travel_lengths);
  quantile_row(os, "effective travel time (s)", results.trips.effective_travel_times);
  quantile_row(os, "travel/login time (s)", results.trips.travel_times);

  if (options.include_series) {
    os << "\n## Distributions\n";
    for (const auto& [range, contacts] : results.contacts) {
      const std::string tag = " r=" + fmt(range, 0) + "m";
      series_table(os, "contact time" + tag, contacts.contact_times,
                   options.series_points);
      series_table(os, "inter-contact time" + tag, contacts.inter_contact_times,
                   options.series_points);
    }
  }
  return os.str();
}

void write_report(const ExperimentResults& results, const std::string& path,
                  const ReportOptions& options) {
  write_file_atomic(path, render_report(results, options));
}

std::string shard_stats_csv(const std::vector<ShardResult>& shards) {
  std::ostringstream os;
  os << "shard,land,seed,snapshots,relogins,coverage_gaps,"
        "packets_sent,packets_received,retransmits,duplicates_dropped,"
        "reliable_failures,rtt_samples,rto_backoffs,"
        "net_sent,net_delivered,net_lost,net_fault_dropped,net_oversize_dropped,"
        "net_shed_session,net_shed_snapshot,circuit_deferred,"
        "server_rejected_overload,server_messages_shed,"
        "degrade_escalations,degrade_recoveries,degraded_snapshots,degraded_seconds\n";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardResult& r = shards[i];
    const CircuitStats& c = r.circuit_stats;
    const NetworkStats& n = r.network_stats;
    os << i << ',' << archetype_name(r.archetype) << ',' << r.seed << ','
       << r.crawler_stats.snapshots_taken << ',' << r.crawler_stats.relogins << ','
       << r.crawler_stats.coverage_gaps << ',' << c.packets_sent << ','
       << c.packets_received << ',' << c.retransmits << ',' << c.duplicates_dropped
       << ',' << c.reliable_failures << ',' << c.rtt_samples << ',' << c.rto_backoffs
       << ',' << n.sent << ',' << n.delivered << ',' << n.lost << ','
       << n.fault_dropped << ',' << n.oversize_dropped << ',' << n.shed_session << ','
       << n.shed_snapshot << ',' << c.deferred_sends << ','
       << r.server_stats.logins_rejected_overload << ','
       << r.server_stats.messages_shed << ',' << r.crawler_stats.degrade_escalations
       << ',' << r.crawler_stats.degrade_recoveries << ','
       << r.crawler_stats.degraded_snapshots << ','
       << fmt(r.trace.degraded_seconds(), 1) << '\n';
  }
  return os.str();
}

void write_shard_stats_csv(const std::vector<ShardResult>& shards,
                           const std::string& path) {
  write_file_atomic(path, shard_stats_csv(shards));
}

}  // namespace slmob
