// Experiment: the one-call public API.
//
// Reproduces the paper's full methodology: run a 24 h (configurable)
// crawler measurement on a target land, then compute every metric of §3 —
// contact opportunities (CT/ICT/FT) at the Bluetooth and WiFi ranges,
// line-of-sight graph properties, zone occupation and trip statistics.
//
//   ExperimentConfig cfg;
//   cfg.archetype = LandArchetype::kDanceIsland;
//   cfg.duration = 24 * kSecondsPerHour;
//   ExperimentResults res = run_experiment(cfg);
//   res.contacts.at(kBluetoothRange).contact_times.median();
#pragma once

#include <map>
#include <optional>
#include <string>

#include "analysis/analysis_report.hpp"
#include "analysis/contacts.hpp"
#include "analysis/graphs.hpp"
#include "analysis/trips.hpp"
#include "analysis/zones.hpp"
#include "core/testbed.hpp"
#include "util/thread_pool.hpp"

namespace slmob {

// The paper's two communication ranges: Bluetooth and 802.11a WiFi.
inline constexpr double kBluetoothRange = 10.0;
inline constexpr double kWifiRange = 80.0;

struct ExperimentConfig {
  LandArchetype archetype{LandArchetype::kIsleOfView};
  Seconds duration{kSecondsPerDay};
  std::uint64_t seed{42};
  std::vector<double> ranges{kBluetoothRange, kWifiRange};
  TestbedConfig testbed;  // archetype/seed fields here are overwritten
  // Analyse the ground-truth trace instead of the crawler's (for
  // architecture-comparison studies).
  bool analyze_ground_truth{false};
  // Total threads for the analysis pipeline (the simulation itself stays
  // single-threaded for determinism). 0 = SLMOB_THREADS env var if set,
  // else hardware_concurrency(). Results are identical for any value.
  std::size_t analysis_threads{0};
  // Named chaos scenario (FaultSchedule::scenario): "none", "blackouts",
  // "burst-loss", "region-flaps" or "chaos". Ignored when testbed.faults is
  // already populated. Scenario randomness comes from `fault_seed`
  // (0 = derive from `seed`), so faults can vary independently of the world.
  std::string fault_scenario{"none"};
  std::uint64_t fault_seed{0};
};

struct ExperimentResults {
  Trace trace;  // the analysed trace
  TraceSummary summary;
  std::map<double, ContactAnalysis> contacts;  // keyed by range
  std::map<double, GraphMetrics> graphs;       // keyed by range
  ZoneAnalysis zones;
  TripAnalysis trips;
  WorldStats world_stats;
  SimServerStats server_stats;  // region admission / shed counters
  CrawlerStats crawler_stats;   // zero-initialised when crawler disabled
  NetworkStats network_stats;
  CircuitStats circuit_stats;   // crawler client, summed across relogins
  std::optional<Trace> ground_truth;
};

// The exact TestbedConfig run_experiment builds from `config` (archetype,
// seed and fault scenario resolved). Exposed so the checkpointed runner
// (core/checkpoint.hpp) wires a bit-identical rig.
TestbedConfig make_testbed_config(const ExperimentConfig& config);

// Runs the testbed for cfg.duration and computes all analyses.
ExperimentResults run_experiment(const ExperimentConfig& config);

// Runs only the analyses on an existing trace (e.g. loaded from disk).
//
// Builds one ProximityCache over the trace (one SpatialGrid per snapshot at
// the largest range, smaller radii derived by distance filtering) and fans
// the independent analyses — contacts and graphs per range, zones, trips —
// plus per-snapshot graph chunks across a thread pool of `threads` total
// threads (0 = SLMOB_THREADS env var, else hardware_concurrency()). Output
// is bit-identical for every thread count.
ExperimentResults analyze_trace(Trace trace, const std::vector<double>& ranges,
                                double land_size = kDefaultLandSize,
                                std::size_t threads = 0);

// The analysis slice of `results` in the report form shared with the
// streaming pipeline (analysis/streaming.hpp), enabling direct
// analysis_diff / analysis_equal comparison. Flights and relations stay
// empty — the batch experiment does not compute them.
AnalysisReport to_analysis_report(const ExperimentResults& results);

}  // namespace slmob
