// Markdown report generation: renders an ExperimentResults as the
// human-readable companion of a measurement run (summary, all §3 metrics,
// distribution quantiles) — what the paper's web application showed its
// users.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "core/shards.hpp"

namespace slmob {

struct ReportOptions {
  // Include the log-spaced CCDF tables for CT/ICT/FT.
  bool include_series{false};
  std::size_t series_points{12};
};

// Renders the results as Markdown.
std::string render_report(const ExperimentResults& results,
                          const ReportOptions& options = {});

// Convenience: render and write to `path` (throws std::runtime_error on
// I/O failure).
void write_report(const ExperimentResults& results, const std::string& path,
                  const ReportOptions& options = {});

// Per-shard transport/measurement stats as CSV (one row per shard, header
// included): degraded transport — retransmits, reliable failures, datagrams
// dropped by fault windows — is visible per land, not silently averaged
// away. Works for any run_sharded/run_supervised result.
std::string shard_stats_csv(const std::vector<ShardResult>& shards);
// Atomic-write convenience (throws std::runtime_error on I/O failure).
void write_shard_stats_csv(const std::vector<ShardResult>& shards,
                           const std::string& path);

}  // namespace slmob
