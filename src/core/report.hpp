// Markdown report generation: renders an ExperimentResults as the
// human-readable companion of a measurement run (summary, all §3 metrics,
// distribution quantiles) — what the paper's web application showed its
// users.
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace slmob {

struct ReportOptions {
  // Include the log-spaced CCDF tables for CT/ICT/FT.
  bool include_series{false};
  std::size_t series_points{12};
};

// Renders the results as Markdown.
std::string render_report(const ExperimentResults& results,
                          const ReportOptions& options = {});

// Convenience: render and write to `path` (throws std::runtime_error on
// I/O failure).
void write_report(const ExperimentResults& results, const std::string& path,
                  const ReportOptions& options = {});

}  // namespace slmob
