// Checkpoint/resume for long measurement runs.
//
// The paper's 24 h crawls died and were restarted by hand; this module makes
// a killed run resumable. A checkpoint directory holds two files:
//
//   trace.sltj       write-ahead journal of everything captured so far
//   checkpoint.slck  CRC-framed snapshot of the run's identity and progress
//
// A checkpoint records the run identity (archetype, duration, seed, fault
// scenario), the progress frontier (virtual time, engine tick, journal byte
// offset) and a replay-verification witness: the world and network RNG
// stream positions, the crawler's backoff level, and key component counters.
//
// Resume reconstructs state by *deterministic replay*: the rig is rebuilt
// from the recorded identity and re-run silently to the checkpointed tick —
// the whole simulator is a pure function of its seeds, so this recreates
// every avatar, in-flight datagram and crawler timer exactly, without
// serializing any of them. The recorded witness is then compared against the
// replayed state; any mismatch (code drift, edited config, cosmic-ray
// checkpoint corruption survived by CRC) aborts the resume instead of
// silently producing a franken-trace. After verification the journal is
// truncated to the recorded offset (replay regenerates any frames past it
// bit-for-bit) and capture continues, so the post-resume trace is
// bit-identical to the trace of a run that was never killed.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "core/experiment.hpp"
#include "trace/journal.hpp"

namespace slmob {

inline constexpr const char* kCheckpointFileName = "checkpoint.slck";
// Previous generation kept by save_checkpoint_rotating: when the newest
// checkpoint turns out truncated or bit-flipped (CRC failure), the loader
// falls back to this one instead of abandoning the run.
inline constexpr const char* kCheckpointPrevFileName = "checkpoint.prev.slck";
inline constexpr const char* kJournalFileName = "trace.sltj";

struct CheckpointState {
  // Run identity: enough to rebuild the rig. Only runs with a default
  // TestbedConfig (the `slmob run` shape) are checkpointable; programmatic
  // rigs with custom testbed knobs must carry their own config to resume.
  LandArchetype archetype{LandArchetype::kIsleOfView};
  Seconds duration{0.0};
  std::uint64_t seed{0};
  std::string fault_scenario{"none"};
  std::uint64_t fault_seed{0};
  std::string out_path;
  Seconds checkpoint_every{0.0};

  // Progress frontier.
  Seconds time{0.0};
  std::uint64_t engine_tick{0};
  std::uint64_t journal_offset{0};

  // Replay-verification witness.
  std::array<std::uint64_t, 4> world_rng{};
  std::array<std::uint64_t, 4> network_rng{};
  std::uint32_t crawler_backoff_level{0};
  std::uint64_t crawler_snapshots{0};
  std::uint64_t crawler_relogins{0};
  std::uint64_t crawler_coverage_gaps{0};
  std::uint64_t world_logins{0};
  std::uint64_t network_sent{0};

  friend bool operator==(const CheckpointState&, const CheckpointState&) = default;
};

// Binary encoding (magic "SLCK" | u16 version | u32 crc32(payload) |
// payload). decode throws DecodeError on bad magic/version/CRC/truncation.
std::vector<std::uint8_t> encode_checkpoint(const CheckpointState& state);
CheckpointState decode_checkpoint(std::span<const std::uint8_t> bytes);

// Atomic write to <dir>/checkpoint.slck: a kill during the save leaves the
// previous checkpoint intact, never a torn file.
void save_checkpoint(const CheckpointState& state, const std::string& dir);
// Throws std::runtime_error when the file is missing or unreadable.
CheckpointState load_checkpoint(const std::string& dir);

// Like save_checkpoint, but first rotates the current checkpoint.slck to
// checkpoint.prev.slck, so two independent generations exist on disk. The
// supervisor uses this: losing the newest checkpoint to corruption then
// costs one extra replay segment, not the whole run.
void save_checkpoint_rotating(const CheckpointState& state, const std::string& dir);

// Result of a fallback-aware load. `state` is empty when no generation
// decoded cleanly; `diagnostic` names every file that was rejected and why
// (missing, truncated, CRC mismatch, ...), so a corrupted checkpoint is a
// loud, explained event rather than UB or a silent cold start.
struct CheckpointLoadResult {
  std::optional<CheckpointState> state;
  bool used_fallback{false};  // state came from checkpoint.prev.slck
  std::string diagnostic;     // non-empty whenever any generation was rejected
};

// Tries checkpoint.slck, then checkpoint.prev.slck. Never throws on corrupt
// or missing files — corruption is reported in `diagnostic` and the next
// generation is tried; the caller decides between resume and cold restart.
CheckpointLoadResult try_load_checkpoint(const std::string& dir);

struct DurableRunOptions {
  // Only archetype/duration/seed/fault_scenario/fault_seed are recorded in
  // the checkpoint; the testbed config must stay default for a resume to
  // rebuild the identical rig.
  ExperimentConfig config;
  std::string dir;                 // checkpoint directory, created if missing
  Seconds checkpoint_every{0.0};   // 0 = journal only (salvageable, not resumable)
  std::string out_path;            // recorded for `slmob run --resume`
  // Test/bench hook simulating a SIGKILL: the run stops abruptly at this
  // virtual time — no trace handover, no journal finalization, exactly the
  // on-disk state a killed process leaves behind.
  std::optional<Seconds> kill_at;
};

struct DurableRunResult {
  Trace trace;  // empty when the run was killed
  CrawlerStats crawler_stats;
  WorldStats world_stats;
  SimServerStats server_stats;
  NetworkStats network_stats;
  CircuitStats circuit_stats;  // crawler client, summed across reconnects
  bool killed{false};
  std::size_t checkpoints_written{0};
  std::string journal_path;
};

// Runs a journaled (and, when checkpoint_every > 0, checkpointed)
// measurement from t = 0. Requires a crawler-equipped config.
DurableRunResult run_durable(const DurableRunOptions& options);

// Resumes a killed run from the newest checkpoint in `dir` (replay, verify,
// truncate journal, continue). Deterministic: resuming the same directory
// twice produces bit-identical traces, equal to the never-killed run's.
DurableRunResult resume_durable(const std::string& dir,
                                std::optional<Seconds> kill_at = std::nullopt);

// Replay-witness plumbing, shared with the run supervisor
// (core/supervisor.hpp), which drives its own segment loop but must record
// and verify exactly the same witness as run_durable/resume_durable.
void fill_checkpoint_witness(CheckpointState& ck, Testbed& bed);
// Throws std::runtime_error naming the first mismatching component.
void verify_checkpoint_replay(const CheckpointState& ck, Testbed& bed);

}  // namespace slmob
