#include "core/experiment.hpp"

#include <stdexcept>

namespace slmob {

ExperimentResults run_experiment(const ExperimentConfig& config) {
  TestbedConfig tb = config.testbed;
  tb.archetype = config.archetype;
  tb.seed = config.seed;
  if (config.analyze_ground_truth) tb.with_ground_truth = true;

  Testbed bed(tb);
  bed.run_until(config.duration);

  Trace trace;
  if (config.analyze_ground_truth) {
    trace = bed.ground_truth()->take_trace();
  } else if (bed.crawler() != nullptr) {
    trace = bed.crawler()->take_trace();
  } else if (bed.ground_truth() != nullptr) {
    trace = bed.ground_truth()->take_trace();
  } else {
    throw std::logic_error("run_experiment: no trace source configured");
  }
  trace.strip_sitting_fixes();

  ExperimentResults results =
      analyze_trace(std::move(trace), config.ranges, bed.world().land().size());
  results.world_stats = bed.world().stats();
  if (bed.crawler() != nullptr) results.crawler_stats = bed.crawler()->stats();
  results.network_stats = bed.network().stats();
  if (!config.analyze_ground_truth && bed.ground_truth() != nullptr) {
    results.ground_truth = bed.ground_truth()->take_trace();
  }
  return results;
}

ExperimentResults analyze_trace(Trace trace, const std::vector<double>& ranges,
                                double land_size) {
  ExperimentResults results;
  results.summary = trace.summary();
  for (const double r : ranges) {
    results.contacts.emplace(r, analyze_contacts(trace, r));
    results.graphs.emplace(r, analyze_graphs(trace, r));
  }
  results.zones = analyze_zones(trace, land_size);
  results.trips = analyze_trips(trace);
  results.trace = std::move(trace);
  return results;
}

}  // namespace slmob
