#include "core/experiment.hpp"

#include <functional>
#include <stdexcept>

#include "analysis/proximity_cache.hpp"

namespace slmob {

TestbedConfig make_testbed_config(const ExperimentConfig& config) {
  TestbedConfig tb = config.testbed;
  tb.archetype = config.archetype;
  tb.seed = config.seed;
  if (config.analyze_ground_truth) tb.with_ground_truth = true;
  if (tb.faults.empty() && config.fault_scenario != "none") {
    const std::uint64_t fseed =
        config.fault_seed != 0 ? config.fault_seed : config.seed;
    tb.faults = FaultSchedule::scenario(config.fault_scenario, config.duration, fseed);
  }
  return tb;
}

ExperimentResults run_experiment(const ExperimentConfig& config) {
  Testbed bed(make_testbed_config(config));
  bed.run_until(config.duration);

  Trace trace;
  if (config.analyze_ground_truth) {
    trace = bed.ground_truth()->take_trace();
  } else if (bed.crawler() != nullptr) {
    trace = bed.crawler()->take_trace();
  } else if (bed.ground_truth() != nullptr) {
    trace = bed.ground_truth()->take_trace();
  } else {
    throw std::logic_error("run_experiment: no trace source configured");
  }
  trace.strip_sitting_fixes();

  ExperimentResults results = analyze_trace(std::move(trace), config.ranges,
                                            bed.world().land().size(),
                                            config.analysis_threads);
  results.world_stats = bed.world().stats();
  results.server_stats = bed.server().stats();
  if (bed.crawler() != nullptr) results.crawler_stats = bed.crawler()->stats();
  results.network_stats = bed.network().stats();
  if (bed.client() != nullptr) results.circuit_stats = bed.client()->total_circuit_stats();
  if (!config.analyze_ground_truth && bed.ground_truth() != nullptr) {
    results.ground_truth = bed.ground_truth()->take_trace();
  }
  return results;
}

ExperimentResults analyze_trace(Trace trace, const std::vector<double>& ranges,
                                double land_size, std::size_t threads) {
  ExperimentResults results;
  results.summary = trace.summary();

  ThreadPool pool(threads);
  const ProximityCache cache(trace, ranges, &pool);

  // Each task owns one disjoint slot of `results`; map nodes are created
  // up front so workers never mutate the maps themselves (std::map never
  // invalidates mapped references).
  std::vector<std::function<void()>> tasks;
  // cache.ranges() is deduplicated, so no two tasks share a map slot.
  for (const double r : cache.ranges()) {
    ContactAnalysis& contacts = results.contacts[r];
    tasks.emplace_back([&trace, &cache, &contacts, r] {
      contacts = analyze_contacts(trace, cache, r);
    });
    GraphMetrics& graphs = results.graphs[r];
    tasks.emplace_back([&trace, &cache, &graphs, r, &pool] {
      graphs = analyze_graphs(trace, cache, r, 1, &pool);
    });
  }
  tasks.emplace_back([&trace, &cache, &results, land_size] {
    results.zones = analyze_zones(trace, cache, land_size);
  });
  tasks.emplace_back([&trace, &results] { results.trips = analyze_trips(trace); });

  parallel_for(pool, tasks.size(), [&](std::size_t i) { tasks[i](); });

  results.trace = std::move(trace);
  return results;
}

AnalysisReport to_analysis_report(const ExperimentResults& results) {
  AnalysisReport report;
  report.summary = results.summary;
  report.contacts = results.contacts;
  report.graphs = results.graphs;
  report.zones = results.zones;
  report.trips = results.trips;
  return report;
}

}  // namespace slmob
