// Testbed: one fully wired measurement rig — engine, world, network, sim
// server, client and crawler — with the components exposed for scripting.
// This is the mid-level API; Experiment (core/experiment.hpp) adds the
// standard analysis pipeline on top.
#pragma once

#include <memory>
#include <optional>

#include "crawler/crawler.hpp"
#include "net/network.hpp"
#include "server/sim_server.hpp"
#include "world/archetypes.hpp"
#include "world/engine.hpp"
#include "world/ground_truth.hpp"
#include "world/world.hpp"

namespace slmob {

struct TestbedConfig {
  LandArchetype archetype{LandArchetype::kIsleOfView};
  std::uint64_t seed{42};
  Seconds tick_length{1.0};
  NetworkParams network;
  SimServerParams server;
  CrawlerConfig crawler;
  bool with_crawler{true};
  // Record a protocol-free ground-truth trace alongside the crawler's.
  bool with_ground_truth{false};
  Seconds ground_truth_interval{10.0};
  std::optional<CuriosityParams> curiosity;  // defaults to world's default
  // One scripted fault schedule for the whole rig: the network consumes the
  // transport kinds (blackout, burst loss, latency, partition), the server
  // the region kinds (crash, capacity flap). Empty = fault-free, and the
  // run is bit-identical to a rig without fault support.
  FaultSchedule faults;
};

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config);

  // Runs the rig until virtual time `until` (starts the crawler on first
  // call if configured).
  void run_until(Seconds until);

  [[nodiscard]] SimEngine& engine() { return engine_; }
  [[nodiscard]] World& world() { return *world_; }
  [[nodiscard]] SimNetwork& network() { return network_; }
  [[nodiscard]] SimServer& server() { return *server_; }
  // Null when with_crawler is false.
  [[nodiscard]] Crawler* crawler() { return crawler_.get(); }
  [[nodiscard]] MetaverseClient* client() { return client_.get(); }
  [[nodiscard]] GroundTruthRecorder* ground_truth() { return ground_truth_.get(); }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }

 private:
  TestbedConfig config_;
  SimEngine engine_;
  std::unique_ptr<World> world_;
  SimNetwork network_;
  std::unique_ptr<SimServer> server_;
  std::unique_ptr<MetaverseClient> client_;
  std::unique_ptr<Crawler> crawler_;
  std::unique_ptr<GroundTruthRecorder> ground_truth_;
  bool started_{false};
};

}  // namespace slmob
