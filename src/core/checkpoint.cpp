#include "core/checkpoint.hpp"

#include <filesystem>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/fileio.hpp"

namespace slmob {
namespace {

constexpr std::uint8_t kCheckpointMagic[4] = {'S', 'L', 'C', 'K'};
constexpr std::uint16_t kCheckpointVersion = 1;

std::string checkpoint_path(const std::string& dir) {
  return dir + "/" + kCheckpointFileName;
}

std::string journal_path(const std::string& dir) { return dir + "/" + kJournalFileName; }

}  // namespace

void fill_checkpoint_witness(CheckpointState& ck, Testbed& bed) {
  ck.engine_tick = static_cast<std::uint64_t>(bed.engine().tick());
  ck.world_rng = bed.world().rng_state();
  ck.network_rng = bed.network().rng_state();
  ck.crawler_backoff_level = bed.crawler()->backoff_level();
  ck.crawler_snapshots = bed.crawler()->stats().snapshots_taken;
  ck.crawler_relogins = bed.crawler()->stats().relogins;
  ck.crawler_coverage_gaps = bed.crawler()->stats().coverage_gaps;
  ck.world_logins = bed.world().stats().total_logins;
  ck.network_sent = bed.network().stats().sent;
}

void verify_checkpoint_replay(const CheckpointState& ck, Testbed& bed) {
  const auto check = [](bool ok, const char* what) {
    if (!ok) {
      throw std::runtime_error(
          std::string("checkpoint resume: replay mismatch on ") + what +
          " — the checkpoint was taken under a different build, config or seed; "
          "refusing to resume into a diverged run");
    }
  };
  check(static_cast<std::uint64_t>(bed.engine().tick()) == ck.engine_tick, "engine tick");
  check(bed.world().rng_state() == ck.world_rng, "world RNG stream");
  check(bed.network().rng_state() == ck.network_rng, "network RNG stream");
  check(bed.crawler()->backoff_level() == ck.crawler_backoff_level,
        "crawler backoff level");
  check(bed.crawler()->stats().snapshots_taken == ck.crawler_snapshots,
        "crawler snapshot count");
  check(bed.crawler()->stats().relogins == ck.crawler_relogins, "crawler relogins");
  check(bed.crawler()->stats().coverage_gaps == ck.crawler_coverage_gaps,
        "crawler coverage gaps");
  check(bed.world().stats().total_logins == ck.world_logins, "world login count");
  check(bed.network().stats().sent == ck.network_sent, "network datagram count");
}

namespace {

// Shared by fresh and resumed runs: advance in checkpoint-sized segments,
// persisting a checkpoint after each, and finalize (or die) on schedule.
DurableRunResult run_loop(Testbed& bed, TraceJournalWriter& writer, CheckpointState base,
                          const std::string& dir, Seconds from,
                          std::optional<Seconds> kill_at) {
  DurableRunResult result;
  result.journal_path = writer.path();
  const Seconds duration = base.duration;
  const Seconds every = base.checkpoint_every;

  const auto capture_stats = [&] {
    result.crawler_stats = bed.crawler()->stats();
    result.world_stats = bed.world().stats();
    result.server_stats = bed.server().stats();
    result.network_stats = bed.network().stats();
    if (bed.client() != nullptr) {
      result.circuit_stats = bed.client()->total_circuit_stats();
    }
  };

  Seconds t = from;
  while (t < duration) {
    const Seconds next = every > 0.0 ? std::min(t + every, duration) : duration;
    if (kill_at && *kill_at < duration && *kill_at < next) {
      // Simulated SIGKILL: stop mid-segment with no handover and no kEnd
      // frame — exactly the on-disk state a killed process leaves.
      bed.run_until(*kill_at);
      result.killed = true;
      capture_stats();
      return result;
    }
    bed.run_until(next);
    t = next;
    if (every > 0.0) {
      CheckpointState ck = base;
      ck.time = t;
      ck.journal_offset = writer.offset();
      fill_checkpoint_witness(ck, bed);
      save_checkpoint(ck, dir);
      ++result.checkpoints_written;
    }
  }

  result.trace = bed.crawler()->take_trace();
  writer.append_end(bed.engine().now());
  capture_stats();
  return result;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const CheckpointState& state) {
  ByteWriter payload;
  payload.u8(static_cast<std::uint8_t>(state.archetype));
  payload.f64(state.duration);
  payload.u64(state.seed);
  payload.str(state.fault_scenario);
  payload.u64(state.fault_seed);
  payload.str(state.out_path);
  payload.f64(state.checkpoint_every);
  payload.f64(state.time);
  payload.u64(state.engine_tick);
  payload.u64(state.journal_offset);
  for (const std::uint64_t word : state.world_rng) payload.u64(word);
  for (const std::uint64_t word : state.network_rng) payload.u64(word);
  payload.u32(state.crawler_backoff_level);
  payload.u64(state.crawler_snapshots);
  payload.u64(state.crawler_relogins);
  payload.u64(state.crawler_coverage_gaps);
  payload.u64(state.world_logins);
  payload.u64(state.network_sent);

  ByteWriter out;
  out.raw(kCheckpointMagic);
  out.u16(kCheckpointVersion);
  out.u32(crc32(payload.bytes()));
  out.raw(payload.bytes());
  return out.take();
}

CheckpointState decode_checkpoint(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 10 ||
      !std::equal(bytes.begin(), bytes.begin() + 4, kCheckpointMagic)) {
    throw DecodeError("decode_checkpoint: bad magic");
  }
  ByteReader head(bytes.subspan(4, 6));
  if (head.u16() != kCheckpointVersion) {
    throw DecodeError("decode_checkpoint: unsupported version");
  }
  const std::uint32_t crc = head.u32();
  const auto payload = bytes.subspan(10);
  if (crc32(payload) != crc) {
    throw DecodeError("decode_checkpoint: CRC mismatch (torn or corrupted checkpoint)");
  }
  ByteReader r(payload);
  CheckpointState state;
  state.archetype = static_cast<LandArchetype>(r.u8());
  state.duration = r.f64();
  state.seed = r.u64();
  state.fault_scenario = r.str();
  state.fault_seed = r.u64();
  state.out_path = r.str();
  state.checkpoint_every = r.f64();
  state.time = r.f64();
  state.engine_tick = r.u64();
  state.journal_offset = r.u64();
  for (auto& word : state.world_rng) word = r.u64();
  for (auto& word : state.network_rng) word = r.u64();
  state.crawler_backoff_level = r.u32();
  state.crawler_snapshots = r.u64();
  state.crawler_relogins = r.u64();
  state.crawler_coverage_gaps = r.u64();
  state.world_logins = r.u64();
  state.network_sent = r.u64();
  if (!r.at_end()) throw DecodeError("decode_checkpoint: trailing bytes");
  return state;
}

void save_checkpoint(const CheckpointState& state, const std::string& dir) {
  write_file_atomic(checkpoint_path(dir), encode_checkpoint(state));
}

namespace {

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  return bytes;
}

}  // namespace

CheckpointState load_checkpoint(const std::string& dir) {
  const std::string path = checkpoint_path(dir);
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("load_checkpoint: cannot open " + path);
  }
  return decode_checkpoint(bytes);
}

void save_checkpoint_rotating(const CheckpointState& state, const std::string& dir) {
  const std::string path = checkpoint_path(dir);
  const std::string prev = dir + "/" + kCheckpointPrevFileName;
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    // rename is atomic on POSIX: at every instant either generation is a
    // complete file, so a kill inside this function costs at most the
    // newest checkpoint, never both.
    std::filesystem::rename(path, prev, ec);
    if (ec) {
      throw std::runtime_error("save_checkpoint_rotating: cannot rotate " + path +
                               ": " + ec.message());
    }
  }
  write_file_atomic(path, encode_checkpoint(state));
}

CheckpointLoadResult try_load_checkpoint(const std::string& dir) {
  CheckpointLoadResult result;
  const struct {
    std::string path;
    bool fallback;
  } generations[] = {{checkpoint_path(dir), false},
                     {dir + "/" + kCheckpointPrevFileName, true}};
  for (const auto& gen : generations) {
    std::error_code ec;
    if (!std::filesystem::exists(gen.path, ec)) {
      if (gen.fallback && !result.diagnostic.empty()) {
        result.diagnostic += "; " + gen.path + ": missing (no fallback generation)";
      }
      continue;
    }
    try {
      result.state = decode_checkpoint(read_file_bytes(gen.path));
      result.used_fallback = gen.fallback;
      return result;
    } catch (const std::exception& e) {
      if (!result.diagnostic.empty()) result.diagnostic += "; ";
      result.diagnostic += gen.path + ": " + e.what();
    }
  }
  return result;
}

DurableRunResult run_durable(const DurableRunOptions& options) {
  if (options.dir.empty()) {
    throw std::invalid_argument("run_durable: checkpoint directory required");
  }
  std::filesystem::create_directories(options.dir);

  Testbed bed(make_testbed_config(options.config));
  if (bed.crawler() == nullptr) {
    throw std::logic_error("run_durable: config has no crawler to journal");
  }
  TraceJournalWriter writer(journal_path(options.dir), options.config.duration);
  bed.crawler()->attach_journal(&writer);

  CheckpointState base;
  base.archetype = options.config.archetype;
  base.duration = options.config.duration;
  base.seed = options.config.seed;
  base.fault_scenario = options.config.fault_scenario;
  base.fault_seed = options.config.fault_seed;
  base.out_path = options.out_path;
  base.checkpoint_every = options.checkpoint_every;
  return run_loop(bed, writer, base, options.dir, 0.0, options.kill_at);
}

DurableRunResult resume_durable(const std::string& dir, std::optional<Seconds> kill_at) {
  const CheckpointState ck = load_checkpoint(dir);

  ExperimentConfig cfg;
  cfg.archetype = ck.archetype;
  cfg.duration = ck.duration;
  cfg.seed = ck.seed;
  cfg.fault_scenario = ck.fault_scenario;
  cfg.fault_seed = ck.fault_seed;

  Testbed bed(make_testbed_config(cfg));
  if (bed.crawler() == nullptr) {
    throw std::logic_error("resume_durable: rebuilt rig has no crawler");
  }
  // Silent replay to the checkpointed frontier: the simulator is a pure
  // function of its seeds, so this reconstructs every avatar, datagram and
  // crawler timer without serializing any of them. No journal is attached —
  // the frames for this prefix already sit in the journal file.
  bed.run_until(ck.time);
  verify_checkpoint_replay(ck, bed);

  auto writer = TraceJournalWriter::resume(journal_path(dir), ck.journal_offset, ck.duration);
  bed.crawler()->attach_journal(&writer);
  return run_loop(bed, writer, ck, dir, ck.time, kill_at);
}

}  // namespace slmob
