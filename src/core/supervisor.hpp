// Self-healing run supervisor: crash containment, watchdog, and automatic
// checkpoint-resume for sharded multi-land runs.
//
// The paper's measurement campaign ran for days against live regions and
// was "interrupted several times" — crawler logouts, sim restarts, library
// crashes — each interruption needing a human to restart the capture. The
// supervisor makes a sharded run (core/shards.hpp) survive those events on
// its own. Every shard executes behind a crash barrier: exceptions and
// injected process faults (FaultKind::kShardCrash / kShardStall) are
// contained to the shard, a deadline watchdog detects shards that stop
// making tick progress, and any contained failure triggers an in-process
// restart of just that shard from its last durable checkpoint, with capped
// exponential backoff and a per-shard retry budget.
//
// Core invariant (enforced by test_core_supervisor and
// bench/supervisor_recovery): because checkpoint resume is deterministic
// replay (core/checkpoint.hpp), a supervised run with injected crashes
// emits traces bit-identical to an uninterrupted run of the same configs,
// at any thread count.
//
// When a shard exhausts its retry budget the run degrades instead of
// failing: the supervisor salvages the shard's journal, the unrun remainder
// stays censored as a trailing CoverageGap, the shard is marked
// failed-partial in its health record, and every other shard finishes
// normally.
//
// Per-shard state machine (see DESIGN.md §13):
//
//   idle → running → completed
//            │ ↑
//            │ └──────── resumed (replay from checkpoint)
//            ▼                ↑
//      crashed / stalled → backoff ──(budget exhausted)→ failed-partial
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/shards.hpp"

namespace slmob {

// Lifecycle phase of one supervised shard, also published (atomically) to
// the watchdog while the shard runs.
enum class ShardPhase : int {
  kIdle = 0,
  kRunning,
  kStalled,        // wedged in a kShardStall window, waiting for the watchdog
  kBackoff,        // contained a failure, sleeping before the restart
  kCompleted,
  kFailedPartial,  // retry budget exhausted; journal salvaged, tail censored
};

[[nodiscard]] const char* shard_phase_name(ShardPhase phase);

// One contained failure of one shard, with enough timing to gate recovery
// latency in the bench.
struct ShardFaultEvent {
  enum class Kind {
    kInjectedCrash,  // FaultKind::kShardCrash window reached
    kInjectedStall,  // FaultKind::kShardStall window reached
    kWatchdogAbort,  // watchdog canceled a shard that stopped heartbeating
    kException,      // a real exception escaped the shard
  };
  Kind kind{Kind::kException};
  Seconds at{0.0};                       // virtual time of the failure
  std::uint64_t snapshots_at_fault{0};   // crawler snapshots taken so far
  std::uint64_t journal_offset_at_fault{0};
  // Stalls: wall ms from entering the stall to the watchdog's cancel.
  double detect_ms{-1.0};
  // Wall ms from containing the failure to the restarted shard completing
  // its first segment (detect → backoff → resume → ticking); -1 when the
  // failure ended the shard (budget exhausted).
  double recovery_ms{-1.0};
  std::string what;                      // exception text / fault description
};

// Health record of one shard over the whole supervised run.
struct ShardHealth {
  std::size_t index{0};
  LandArchetype archetype{LandArchetype::kIsleOfView};
  std::uint64_t seed{0};
  ShardPhase phase{ShardPhase::kIdle};
  std::uint64_t crashes{0};          // injected crashes + real exceptions
  std::uint64_t stalls{0};           // injected stalls
  std::uint64_t watchdog_aborts{0};  // cancels issued by the watchdog
  std::uint64_t restarts{0};         // restart attempts consumed
  std::uint64_t cold_restarts{0};    // restarts that found no usable checkpoint
  std::size_t checkpoints_written{0};
  bool used_fallback_checkpoint{false};  // a resume loaded checkpoint.prev.slck
  bool failed_partial{false};
  std::string last_error;            // most recent failure / diagnostic text
  std::vector<ShardFaultEvent> events;
};

struct SupervisorOptions {
  // Worker threads across shards, ThreadPool semantics (1 = serial,
  // 0 = SLMOB_THREADS / hardware default).
  std::size_t threads{0};
  // Required: every shard runs journaled + checkpointed under
  // <checkpoint_dir>/shard-NN-<land>/, rotating two checkpoint generations.
  std::string checkpoint_dir;
  Seconds checkpoint_every{300.0};
  // Optional, parallel to the shard configs (see ShardRunOptions).
  std::vector<std::string> out_paths;
  // Retry budget per shard; exceeding it degrades the shard to
  // failed-partial instead of failing the run.
  std::uint64_t max_restarts{5};
  // Watchdog deadline in wall milliseconds without heartbeat progress;
  // <= 0 disables the watchdog (injected stalls then fail immediately).
  double watchdog_timeout_ms{30000.0};
  // Capped exponential backoff between restart attempts (wall ms).
  double backoff_base_ms{100.0};
  double backoff_max_ms{2000.0};
  // Heartbeat granularity in *virtual* seconds: the shard loop publishes a
  // heartbeat to the watchdog at least this often. Smaller = faster stall
  // detection, more sub-steps (never affects trace content).
  Seconds heartbeat_every{60.0};
  // Test hook: wall ms slept after every completed segment, making a shard
  // slow-but-healthy so tests can prove the watchdog does not false-kill.
  double test_segment_delay_ms{0.0};
};

struct SupervisedRun {
  std::vector<ShardResult> shards;  // config order, like run_sharded
  std::vector<ShardHealth> health;  // parallel to `shards`

  [[nodiscard]] bool all_completed() const {
    for (const auto& h : health) {
      if (h.phase != ShardPhase::kCompleted) return false;
    }
    return true;
  }
  [[nodiscard]] bool any_failed_partial() const {
    for (const auto& h : health) {
      if (h.failed_partial) return true;
    }
    return false;
  }
};

// Runs every shard under supervision. Shard-fault windows in each config's
// fault schedule (FaultSchedule::shard_faults) are injected at their start
// times, each at most once per run. Throws std::invalid_argument when
// `options.checkpoint_dir` is empty, or std::logic_error for a shard config
// without a crawler (only crawler traces are journaled and thus healable).
SupervisedRun run_supervised(const std::vector<ExperimentConfig>& shards,
                             const SupervisorOptions& options);

}  // namespace slmob
