#include "core/testbed.hpp"

namespace slmob {

Testbed::Testbed(const TestbedConfig& config)
    : config_(config),
      engine_(config.tick_length),
      world_(make_world(config.archetype, config.seed)),
      network_(config.network, config.seed ^ 0x9e3779b97f4a7c15ULL) {
  if (config_.curiosity) world_->set_curiosity(*config_.curiosity);

  SimServerParams server_params = config_.server;
  if (!config_.faults.empty()) {
    network_.set_faults(config_.faults);
    server_params.faults = config_.faults;
  }
  server_ = std::make_unique<SimServer>(network_, *world_, server_params);

  if (!config_.faults.empty()) {
    // Flash-crowd windows scale the world's admitted arrivals. The hook only
    // exists when a schedule is installed, so fault-free rigs run the exact
    // historical tick sequence.
    engine_.add(kPriorityWorld, [this](Seconds now, Seconds /*dt*/) {
      world_->set_arrival_boost(config_.faults.flash_crowd_factor_at(now));
    });
  }
  engine_.add(kPriorityWorld,
              [this](Seconds now, Seconds dt) { world_->tick(now, dt); });
  engine_.add(kPriorityServer,
              [this](Seconds now, Seconds dt) { server_->tick(now, dt); });
  engine_.add(kPriorityNetwork,
              [this](Seconds now, Seconds dt) { network_.tick(now, dt); });

  if (config_.with_crawler) {
    client_ = std::make_unique<MetaverseClient>(network_, server_->address(), "slmob",
                                                "crawler");
    crawler_ = std::make_unique<Crawler>(*client_, config_.crawler, config_.seed ^ 0xabcd);
    engine_.add(kPriorityClient,
                [this](Seconds now, Seconds dt) { client_->tick(now, dt); });
    engine_.add(kPriorityMonitor,
                [this](Seconds now, Seconds dt) { crawler_->tick(now, dt); });
  }
  if (config_.with_ground_truth) {
    ground_truth_ =
        std::make_unique<GroundTruthRecorder>(*world_, config_.ground_truth_interval);
    engine_.add(kPriorityMonitor,
                [this](Seconds now, Seconds dt) { ground_truth_->tick(now, dt); });
  }
}

void Testbed::run_until(Seconds until) {
  if (!started_) {
    started_ = true;
    if (crawler_) crawler_->start();
  }
  engine_.run_until(until);
}

}  // namespace slmob
