#include "core/shards.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace slmob {
namespace {

// One shard, in-memory: wire the rig, run it, hand over the raw trace.
ShardResult run_shard_in_memory(const ExperimentConfig& config) {
  ShardResult result;
  result.archetype = config.archetype;
  result.seed = config.seed;

  Testbed bed(make_testbed_config(config));
  bed.run_until(config.duration);

  if (bed.crawler() != nullptr) {
    result.trace = bed.crawler()->take_trace();
    result.crawler_stats = bed.crawler()->stats();
  } else if (bed.ground_truth() != nullptr) {
    result.trace = bed.ground_truth()->take_trace();
  } else {
    throw std::logic_error("run_sharded: shard has no trace source configured");
  }
  result.world_stats = bed.world().stats();
  result.server_stats = bed.server().stats();
  result.network_stats = bed.network().stats();
  if (bed.client() != nullptr) result.circuit_stats = bed.client()->total_circuit_stats();
  return result;
}

ShardResult run_shard_durable(const ExperimentConfig& config, const std::string& dir,
                              Seconds checkpoint_every, std::optional<Seconds> kill_at,
                              const std::string& out_path) {
  DurableRunOptions options;
  options.config = config;
  options.dir = dir;
  options.checkpoint_every = checkpoint_every;
  options.kill_at = kill_at;
  options.out_path = out_path;
  DurableRunResult durable = run_durable(options);

  ShardResult result;
  result.archetype = config.archetype;
  result.seed = config.seed;
  result.out_path = out_path;
  result.trace = std::move(durable.trace);
  result.crawler_stats = durable.crawler_stats;
  result.world_stats = durable.world_stats;
  result.server_stats = durable.server_stats;
  result.network_stats = durable.network_stats;
  result.circuit_stats = durable.circuit_stats;
  result.killed = durable.killed;
  result.checkpoints_written = durable.checkpoints_written;
  return result;
}

ShardResult resume_shard(const std::string& dir, std::optional<Seconds> kill_at) {
  const CheckpointState state = load_checkpoint(dir);
  DurableRunResult durable = resume_durable(dir, kill_at);

  ShardResult result;
  result.archetype = state.archetype;
  result.seed = state.seed;
  result.out_path = state.out_path;
  result.trace = std::move(durable.trace);
  result.crawler_stats = durable.crawler_stats;
  result.world_stats = durable.world_stats;
  result.server_stats = durable.server_stats;
  result.network_stats = durable.network_stats;
  result.circuit_stats = durable.circuit_stats;
  result.killed = durable.killed;
  result.checkpoints_written = durable.checkpoints_written;
  return result;
}

std::string slug(std::string name) {
  for (char& c : name) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    } else if (!(c >= 'a' && c <= 'z') && !(c >= '0' && c <= '9')) {
      c = '-';
    }
  }
  return name;
}

}  // namespace

std::string shard_dir_name(std::size_t index, LandArchetype archetype) {
  char prefix[32];
  std::snprintf(prefix, sizeof prefix, "shard-%02zu-", index);
  return prefix + slug(archetype_name(archetype));
}

std::vector<ShardResult> run_sharded(const std::vector<ExperimentConfig>& shards,
                                     const ShardRunOptions& options) {
  const bool durable = !options.checkpoint_dir.empty();
  if (durable) std::filesystem::create_directories(options.checkpoint_dir);

  ThreadPool pool(options.threads);
  return parallel_map<ShardResult>(pool, shards.size(), [&](std::size_t i) {
    const ExperimentConfig& config = shards[i];
    if (!durable) return run_shard_in_memory(config);
    const std::string dir =
        options.checkpoint_dir + "/" + shard_dir_name(i, config.archetype);
    const std::string out =
        options.out_paths.empty() ? std::string{} : options.out_paths[i];
    return run_shard_durable(config, dir, options.checkpoint_every, options.kill_at, out);
  });
}

std::vector<ShardResult> resume_sharded(const std::string& checkpoint_dir,
                                        std::size_t threads,
                                        std::optional<Seconds> kill_at) {
  namespace fs = std::filesystem;
  std::vector<std::string> dirs;
  if (fs::exists(fs::path(checkpoint_dir) / kCheckpointFileName)) {
    // A single shard's own directory (also the layout `slmob run
    // --checkpoint` writes for a one-land run).
    dirs.push_back(checkpoint_dir);
  } else {
    for (const auto& entry : fs::directory_iterator(checkpoint_dir)) {
      if (!entry.is_directory()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("shard-", 0) != 0) continue;
      if (!fs::exists(entry.path() / kCheckpointFileName)) continue;
      dirs.push_back(entry.path().string());
    }
    // directory_iterator order is unspecified; shard-NN- prefixes make the
    // sorted order the original shard order.
    std::sort(dirs.begin(), dirs.end());
  }
  if (dirs.empty()) {
    throw std::runtime_error("resume_sharded: no shard checkpoints in " + checkpoint_dir);
  }

  ThreadPool pool(threads);
  return parallel_map<ShardResult>(
      pool, dirs.size(), [&](std::size_t i) { return resume_shard(dirs[i], kill_at); });
}

std::vector<ExperimentResults> run_experiments_sharded(
    const std::vector<ExperimentConfig>& shards, std::size_t threads) {
  ThreadPool pool(threads);
  return parallel_map<ExperimentResults>(pool, shards.size(), [&](std::size_t i) {
    ExperimentConfig config = shards[i];
    // Shard-level parallelism only: nested analysis fan-out would
    // oversubscribe the pool's workers.
    config.analysis_threads = 1;
    return run_experiment(config);
  });
}

}  // namespace slmob
